package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"warpsched/internal/metrics"
)

// fastIters/slowIters pick loop lengths for testSrc: fastIters finishes
// in well under a second; slowIters runs long enough (hundreds of ms)
// that a test can observe the job mid-flight.
const (
	fastIters = 1000
	slowIters = 100_000
)

func newTestServer(t *testing.T, opt Options) *Server {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s
}

func postJob(t *testing.T, base string, req *JobRequest) (JobStatus, int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	var st JobStatus
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("decode %s: %v", data, err)
		}
	}
	return st, resp.StatusCode, data
}

func getBytes(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, data
}

// TestEndToEnd drives the full HTTP surface: a synchronous submission
// runs the engine; resubmitting the identical job is a cache hit that
// runs nothing and serves byte-identical result bytes.
func TestEndToEnd(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := inlineReq(fastIters)
	req.Wait = true
	st, code, _ := postJob(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("first POST: status %d", code)
	}
	if st.State != "done" || st.Cached || st.Cycles <= 0 || st.Key == "" || st.Err != "" {
		t.Fatalf("first job: %+v", st)
	}
	t.Logf("loop with %d iters took %d cycles", fastIters, st.Cycles)

	t0 := time.Now()
	st2, code, _ := postJob(t, ts.URL, req)
	hitLatency := time.Since(t0)
	if code != http.StatusOK || !st2.Cached || st2.State != "done" {
		t.Fatalf("second POST: status %d, %+v", code, st2)
	}
	if st2.Key != st.Key || st2.Cycles != st.Cycles {
		t.Errorf("cache hit differs: %+v vs %+v", st2, st)
	}
	// The acceptance bar is sub-10ms; allow slack for loaded CI hosts
	// while still catching an accidental engine re-run.
	if hitLatency > 500*time.Millisecond {
		t.Errorf("cache hit took %s", hitLatency)
	}

	code1, body1 := getBytes(t, ts.URL+"/v1/results/"+st.Key)
	code2, body2 := getBytes(t, ts.URL+"/v1/results/"+st.Key)
	if code1 != 200 || code2 != 200 {
		t.Fatalf("GET results: %d, %d", code1, code2)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("repeated result fetches are not byte-identical")
	}
	var m metrics.Manifest
	if err := json.Unmarshal(body1, &m); err != nil {
		t.Fatalf("result is not a manifest: %v", err)
	}
	if len(m.Runs) != 1 || m.Runs[0].Cycles != st.Cycles || m.Runs[0].Counters == nil {
		t.Errorf("manifest runs: %+v", m.Runs)
	}

	_, code, _ = postJob(t, ts.URL, req) // third hit, then poll by id
	if code != http.StatusOK {
		t.Fatalf("third POST: %d", code)
	}
	code, data := getBytes(t, ts.URL+"/v1/jobs/"+st.ID)
	if code != 200 {
		t.Fatalf("GET job %s: %d (%s)", st.ID, code, data)
	}

	var stats Stats
	if code, data := getBytes(t, ts.URL+"/v1/stats"); code != 200 {
		t.Fatalf("GET stats: %d", code)
	} else if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Jobs.EngineRuns != 1 {
		t.Errorf("engine runs = %d, want 1 (cache must absorb repeats)", stats.Jobs.EngineRuns)
	}
	if stats.Jobs.Admitted != 3 || stats.Cache.Hits < 2 {
		t.Errorf("stats: %+v", stats.Jobs)
	}

	if code, _ := getBytes(t, ts.URL+"/v1/jobs/nope"); code != 404 {
		t.Errorf("unknown job: %d, want 404", code)
	}
	if code, _ := getBytes(t, ts.URL+"/v1/results/nope"); code != 404 {
		t.Errorf("unknown result: %d, want 404", code)
	}
	if code, _ := getBytes(t, ts.URL+"/healthz"); code != 200 {
		t.Errorf("healthz: %d", code)
	}
}

// TestAsyncSubmit polls an asynchronous submission to completion.
func TestAsyncSubmit(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, code, _ := postJob(t, ts.URL, inlineReq(slowIters))
	if code != http.StatusAccepted {
		t.Fatalf("async POST: status %d, want 202", code)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for st.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %+v", st.ID, st)
		}
		time.Sleep(5 * time.Millisecond)
		code, data := getBytes(t, ts.URL+"/v1/jobs/"+st.ID)
		if code != 200 {
			t.Fatalf("poll: %d", code)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("poll decode: %v", err)
		}
	}
	if st.Err != "" || st.Cycles <= 0 {
		t.Fatalf("job failed: %+v", st)
	}
}

// TestBadRequests covers the admission reject paths: malformed JSON,
// unknown fields, invalid configuration, and — the 422 path — a program
// that parses but fails static analysis.
func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, data
	}

	if code, _ := post("{not json"); code != 400 {
		t.Errorf("malformed JSON: %d, want 400", code)
	}
	if code, _ := post(`{"kernle": "HT"}`); code != 400 {
		t.Errorf("unknown field: %d, want 400", code)
	}
	for name, req := range map[string]*JobRequest{
		"no program":      {},
		"both":            {Kernel: "HT", Source: testSrc},
		"unknown kernel":  {Kernel: "NOPE"},
		"unknown sched":   {Kernel: "HT", Config: JobConfig{Quick: true, Sched: "FIFO"}},
		"unknown gpu":     {Kernel: "HT", Config: JobConfig{Quick: true, GPU: "volta"}},
		"no geometry":     {Source: testSrc},
		"huge max_cycles": {Kernel: "HT", Config: JobConfig{Quick: true, MaxCycles: 1 << 60}},
		"parse error":     {Source: "frob %r1", GridCTAs: 1, CTAThreads: 32, MemWords: 64},
	} {
		body, _ := json.Marshal(req)
		if code, data := post(string(body)); code != 400 {
			t.Errorf("%s: %d (%s), want 400", name, code, data)
		}
	}

	// Parses cleanly but reads an uninitialized register: static analysis
	// must reject it at admission with findings, HTTP 422.
	bad := &JobRequest{Source: "add %r1, %r2, 1\nexit\n",
		GridCTAs: 1, CTAThreads: 32, MemWords: 64}
	body, _ := json.Marshal(bad)
	code, data := post(string(body))
	if code != 422 {
		t.Fatalf("analysis reject: %d (%s), want 422", code, data)
	}
	var eb struct {
		Error    string            `json:"error"`
		Findings []json.RawMessage `json:"findings"`
	}
	if err := json.Unmarshal(data, &eb); err != nil || len(eb.Findings) == 0 {
		t.Errorf("422 body should carry findings: %s (%v)", data, err)
	}
	if st := s.Stats(); st.Jobs.RejectedInvalid == 0 {
		t.Error("rejected_invalid not counted")
	}

	// Structurally sound but racy: lanes 2k and 2k+1 both store word k.
	// The race analyzer must reject it at admission (422, schema-2
	// findings with class "race"), and allow_unsafe must admit it.
	racy := &JobRequest{Source: racySrc, GridCTAs: 1, CTAThreads: 64, MemWords: 64}
	body, _ = json.Marshal(racy)
	code, data = post(string(body))
	if code != 422 {
		t.Fatalf("race reject: %d (%s), want 422", code, data)
	}
	var rb struct {
		Error    string `json:"error"`
		Schema   int    `json:"schema"`
		Findings []struct {
			Category string `json:"category"`
			Class    string `json:"class"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(data, &rb); err != nil || len(rb.Findings) == 0 {
		t.Fatalf("race 422 body should carry findings: %s (%v)", data, err)
	}
	if rb.Schema != 2 {
		t.Errorf("race 422 schema = %d, want 2", rb.Schema)
	}
	if rb.Findings[0].Category != "race" || rb.Findings[0].Class != "race" {
		t.Errorf("race 422 finding = %+v, want category/class race", rb.Findings[0])
	}

	unsafe := &JobRequest{Source: racySrc, GridCTAs: 1, CTAThreads: 64,
		MemWords: 64, AllowUnsafe: true, Wait: true}
	body, _ = json.Marshal(unsafe)
	if code, data := post(string(body)); code != 200 {
		t.Errorf("allow_unsafe admit: %d (%s), want 200", code, data)
	}
}

// racySrc parses and validates but has an inter-warp store/store race:
// lanes 2k and 2k+1 both write word k of param-less memory at base 0.
const racySrc = `
  mov %r1, %tid
  shr %r3, %r1, 1
  st.global [%r3+0], %r1
  exit
`

// TestSingleFlight submits the same job from many goroutines at once
// and checks exactly one engine run happens, with every caller getting
// the same result.
func TestSingleFlight(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})

	const k = 8
	var wg sync.WaitGroup
	cycles := make([]int64, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, rerr := s.Submit(inlineReq(slowIters))
			if rerr != nil {
				t.Errorf("submit %d: %v", i, rerr)
				return
			}
			<-j.done
			cycles[i] = j.result.Cycles
		}(i)
	}
	wg.Wait()

	st := s.Stats()
	if st.Jobs.EngineRuns != 1 {
		t.Errorf("engine runs = %d, want 1 (single-flight)", st.Jobs.EngineRuns)
	}
	if st.Jobs.Admitted+st.Jobs.Deduped != k {
		t.Errorf("admitted %d + deduped %d != %d submissions", st.Jobs.Admitted, st.Jobs.Deduped, k)
	}
	for i := 1; i < k; i++ {
		if cycles[i] != cycles[0] {
			t.Fatalf("caller %d saw %d cycles, caller 0 saw %d", i, cycles[i], cycles[0])
		}
	}
}

// TestQueueFull: with one worker and a one-deep queue, a third distinct
// job must be shed with 429 while the first runs and the second waits.
func TestQueueFull(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 1})

	a, rerr := s.Submit(inlineReq(slowIters))
	if rerr != nil {
		t.Fatalf("submit a: %v", rerr)
	}
	// Wait until the worker has picked up job a, so the queue is empty.
	deadline := time.Now().Add(time.Minute)
	for s.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job a never started")
		}
		time.Sleep(time.Millisecond)
	}
	b, rerr := s.Submit(inlineReq(slowIters + 1))
	if rerr != nil {
		t.Fatalf("submit b: %v", rerr)
	}
	_, rerr = s.Submit(inlineReq(slowIters + 2))
	if rerr == nil || rerr.Status != http.StatusTooManyRequests {
		t.Fatalf("third submit: %v, want 429", rerr)
	}
	if st := s.Stats(); st.Jobs.RejectedQueueFull != 1 {
		t.Errorf("rejected_queue_full = %d, want 1", st.Jobs.RejectedQueueFull)
	}
	<-a.done
	<-b.done
}

// TestDrain: Shutdown finishes queued and running jobs, then admission
// answers 503 and /healthz flips to draining.
func TestDrain(t *testing.T) {
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, rerr := s.Submit(inlineReq(slowIters))
	if rerr != nil {
		t.Fatalf("submit a: %v", rerr)
	}
	b, rerr := s.Submit(inlineReq(slowIters + 1))
	if rerr != nil {
		t.Fatalf("submit b: %v", rerr)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, j := range []*job{a, b} {
		select {
		case <-j.done:
		default:
			t.Fatal("Shutdown returned with unfinished jobs")
		}
		if j.result == nil || j.result.Err != "" {
			t.Errorf("drained job result: %+v", j.result)
		}
	}
	if _, rerr := s.Submit(inlineReq(fastIters)); rerr == nil || rerr.Status != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: %v, want 503", rerr)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", rec.Code)
	}
	// Second Shutdown is a no-op, not a panic.
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

// TestProgress observes live cycle counts on a running job via the
// engine's progress hook.
func TestProgress(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	j, rerr := s.Submit(inlineReq(3 * slowIters))
	if rerr != nil {
		t.Fatalf("submit: %v", rerr)
	}
	var sawLive int64
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st := s.status(j)
		if st.State == "running" && st.Cycles > 0 && sawLive == 0 {
			sawLive = st.Cycles
		}
		if st.State == "done" {
			if st.Err != "" {
				t.Fatalf("job failed: %+v", st)
			}
			if sawLive == 0 {
				t.Fatalf("never observed live progress before completion (final: %d cycles)", st.Cycles)
			}
			if sawLive > st.Cycles {
				t.Errorf("live progress %d exceeds final cycle count %d", sawLive, st.Cycles)
			}
			t.Logf("live progress %d of %d final cycles", sawLive, st.Cycles)
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJournalRecovery: jobs admitted but unfinished when a server dies
// are re-run on the next start under their original ids; duplicate-key
// admits collapse onto one job; a torn final line (crash mid-append) is
// tolerated.
func TestJournalRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")

	write := func(jl journalLine) string {
		data, err := json.Marshal(jl)
		if err != nil {
			t.Fatal(err)
		}
		return string(data) + "\n"
	}
	var sb strings.Builder
	sb.WriteString(write(journalLine{Admit: &journalAdmit{ID: "j3", Req: inlineReq(fastIters)}}))
	sb.WriteString(write(journalLine{Admit: &journalAdmit{ID: "j4", Req: inlineReq(fastIters)}})) // same key as j3
	sb.WriteString(write(journalLine{Admit: &journalAdmit{ID: "j5", Req: inlineReq(fastIters + 1)}}))
	sb.WriteString(write(journalLine{Done: "j5"})) // j5 finished before the crash
	sb.WriteString(`{"admit":{"id":"j9"`)          // torn final line
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Options{Workers: 1, Journal: path, Log: t.Logf})
	j3, ok := s.Job("j3")
	if !ok {
		t.Fatal("j3 not recovered")
	}
	j4, ok := s.Job("j4")
	if !ok || j4 != j3 {
		t.Fatalf("j4 should attach to j3's job (ok=%v, same=%v)", ok, j4 == j3)
	}
	if _, ok := s.Job("j5"); ok {
		t.Error("finished job j5 should not be recovered")
	}
	select {
	case <-j3.done:
	case <-time.After(2 * time.Minute):
		t.Fatal("recovered job never finished")
	}
	if j3.result == nil || j3.result.Err != "" || j3.cached {
		t.Fatalf("recovered result: %+v", j3.result)
	}
	if _, ok := s.Result(j3.key); !ok {
		t.Error("recovered job's result not cached")
	}
	if st := s.Stats(); st.Jobs.Recovered != 1 {
		t.Errorf("recovered = %d, want 1 (duplicate admits collapse)", st.Jobs.Recovered)
	}

	// Recovery must advance the id counter past every journaled id.
	j6, rerr := s.Submit(inlineReq(fastIters + 2))
	if rerr != nil {
		t.Fatalf("post-recovery submit: %v", rerr)
	}
	if j6.ids[0] != "j6" {
		t.Errorf("next id = %s, want j6", j6.ids[0])
	}
	<-j6.done

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// After a clean drain, every admit has a matching done, and the max
	// id covers both recovered and freshly-admitted jobs.
	jour, unfinished, maxID, err := openJournal(path)
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	jour.Close()
	if len(unfinished) != 0 {
		t.Errorf("unfinished after clean drain: %v", unfinished)
	}
	if maxID != 6 {
		t.Errorf("journal max id = %d, want 6", maxID)
	}
}

// TestJournalCorruption: damage before the final line is salvaged — the
// bad line is skipped, the readable records still count, and the
// damaged original is preserved beside the compacted journal.
func TestJournalCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	content := "{\"admit\":{\"id\":\"j1\",\"req\":{\"kernel\":\"HT\"}}}\nGARBAGE\n{\"done\":\"j1\"}\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	j, unfinished, maxID, err := openJournal(path)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	defer j.Close()
	if len(unfinished) != 0 {
		t.Errorf("j1 admitted and done, want no unfinished jobs, got %v", unfinished)
	}
	if maxID != 1 {
		t.Errorf("maxID = %d, want 1", maxID)
	}
	st := j.statsSnapshot()
	if st.SalvagedLines != 1 {
		t.Errorf("SalvagedLines = %d, want 1", st.SalvagedLines)
	}
	saved, err := os.ReadFile(path + ".corrupt")
	if err != nil {
		t.Fatalf("damaged original not preserved: %v", err)
	}
	if string(saved) != content {
		t.Errorf("preserved copy differs from the damaged original")
	}
}

// TestUnrecoverableJobDropped: a journaled request that no longer
// validates (here: a lowered cycle ceiling) is dropped with a done
// marker instead of wedging recovery forever.
func TestUnrecoverableJobDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	req := inlineReq(fastIters)
	req.Config.MaxCycles = 5_000_000
	data, err := json.Marshal(journalLine{Admit: &journalAdmit{ID: "j1", Req: req}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{Workers: 1, Journal: path, MaxJobCycles: 1_000_000})
	if _, ok := s.Job("j1"); ok {
		t.Error("invalid job should not be recovered")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, unfinished, _, err := openJournal(path); err != nil {
		t.Fatalf("reopen: %v", err)
	} else if len(unfinished) != 0 {
		t.Errorf("dropped job still unfinished: %v", unfinished)
	}
}

// TestRegisteredKernelJob runs a real registered kernel (quick HT)
// through the service and sanity-checks the manifest config block.
func TestRegisteredKernelJob(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := &JobRequest{Kernel: "HT", Wait: true,
		Config: JobConfig{SMs: 2, Quick: true, Sched: "GTO"}}
	st, code, _ := postJob(t, ts.URL, req)
	if code != 200 || st.Err != "" || st.Cycles <= 0 {
		t.Fatalf("HT job: code %d, %+v", code, st)
	}
	_, body := getBytes(t, ts.URL+"/v1/results/"+st.Key)
	var m metrics.Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if m.Config["cache_key"] != st.Key || m.Config["kernel"] != "HT" {
		t.Errorf("manifest config: %+v", m.Config)
	}
	if fmt.Sprint(m.Config["sim_version"]) == "" {
		t.Error("manifest missing sim_version")
	}
}
