package chaos

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"warpsched/internal/server"
	"warpsched/internal/store"
)

// daemonBin is the warpsimd binary under test, built once in TestMain
// so every crash/restart cycle exercises the real process boundary
// (flag parsing, signal handling, startup recovery) and not just the
// library.
var daemonBin string

func TestMain(m *testing.M) {
	tmp, err := os.MkdirTemp("", "chaos-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
	daemonBin = filepath.Join(tmp, "warpsimd")
	out, err := exec.Command("go", "build", "-o", daemonBin, "warpsched/cmd/warpsimd").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: build warpsimd: %v\n%s", err, out)
		os.RemoveAll(tmp)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(tmp)
	os.Exit(code)
}

// chaosSrc mirrors the server package's test program: a counted ALU
// loop whose run length is param 0, analysis-clean so admission needs
// no allow_unsafe.
const chaosSrc = `
  ld.param %r2, 0
  mov %r1, 0
loop:
  add %r1, %r1, 1
  setp.lt %p1, %r1, %r2
  @%p1 bra loop
  exit
`

func chaosReq(iters uint32, wait bool) *server.JobRequest {
	return &server.JobRequest{Source: chaosSrc, Name: "alu-loop",
		GridCTAs: 1, CTAThreads: 32, MemWords: 64, Params: []uint32{iters},
		Config: server.JobConfig{SMs: 1}, Wait: wait}
}

// daemon is one warpsimd child process.
type daemon struct {
	cmd  *exec.Cmd
	addr string
	done chan error // closed after the process exits
}

// startDaemon launches warpsimd on an ephemeral port with the given
// extra flags and waits for its "serving on <addr>" startup line.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(daemonBin, append([]string{"-addr", "127.0.0.1:0", "-quiet"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start warpsimd: %v", err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "serving on "); i >= 0 {
				rest := line[i+len("serving on "):]
				if j := strings.IndexByte(rest, ' '); j >= 0 {
					rest = rest[:j]
				}
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait(); close(done) }()

	select {
	case addr := <-addrCh:
		d := &daemon{cmd: cmd, addr: addr, done: done}
		t.Cleanup(d.sigkill) // safety net; a no-op once the process exited
		return d
	case err := <-done:
		t.Fatalf("warpsimd exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("warpsimd never reported its listen address")
	}
	return nil
}

// sigkill is the crash: no drain, no flush, no journal done markers.
func (d *daemon) sigkill() {
	d.cmd.Process.Kill()
	<-d.done
}

// terminate is the clean exit: SIGTERM, then wait for the drain.
func (d *daemon) terminate(t *testing.T) {
	t.Helper()
	d.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-d.done:
	case <-time.After(60 * time.Second):
		d.cmd.Process.Kill()
		t.Fatal("warpsimd did not drain after SIGTERM")
	}
}

func (d *daemon) client() *server.Client {
	return server.NewClient("http://"+d.addr, server.ClientOptions{
		MaxAttempts: 8,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  200 * time.Millisecond,
	})
}

// submitDone submits synchronously and requires a clean completion.
func submitDone(t *testing.T, cli *server.Client, req *server.JobRequest) server.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := cli.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.State != "done" || st.Err != "" {
		t.Fatalf("job did not complete cleanly: %+v", st)
	}
	return st
}

// fetchManifest requires the result to be served now.
func fetchManifest(t *testing.T, cli *server.Client, key string) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	data, err := cli.Result(ctx, key)
	if err != nil {
		t.Fatalf("result %s: %v", key, err)
	}
	return data
}

// waitManifest polls until the result exists (404s are definitive per
// fetch but the job may still be replaying from the journal).
func waitManifest(t *testing.T, cli *server.Client, key string, timeout time.Duration) []byte {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		data, err := cli.Result(ctx, key)
		cancel()
		if err == nil {
			return data
		}
		if time.Now().After(deadline) {
			t.Fatalf("result %s not served within %v: %v", key, timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

const (
	fastIters = 1000
	slowIters = 400_000 // long enough to be in flight when the crash lands
)

// TestSIGKILLMidJobRecovers is the headline durability claim: SIGKILL
// the daemon with one result acked and another job in flight, restart
// on the same journal and store, and require that (a) the acked result
// is served byte-identically from disk with no engine run, and (b) the
// unfinished job is replayed and its manifest is byte-identical to a
// clean daemon's run of the same request.
func TestSIGKILLMidJobRecovers(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "journal.jsonl")
	storeDir := filepath.Join(dir, "store")

	d := startDaemon(t, "-workers", "1", "-journal", journal, "-store", storeDir)
	cli := d.client()

	acked := submitDone(t, cli, chaosReq(fastIters, true))
	ackedManifest := fetchManifest(t, cli, acked.Key)

	// A slower job submitted asynchronously; with one worker it is
	// running (or still queued) when the SIGKILL lands. Wait until the
	// daemon reports it started so the crash is genuinely mid-job.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	inflight, err := cli.Submit(ctx, chaosReq(slowIters, false))
	if err != nil {
		t.Fatalf("submit in-flight job: %v", err)
	}
	for start := time.Now(); time.Since(start) < 10*time.Second; {
		js, err := cli.Job(ctx, inflight.ID)
		if err != nil {
			t.Fatalf("job poll: %v", err)
		}
		if js.State != "queued" {
			break // running, or already done — the asserts below hold either way
		}
		time.Sleep(5 * time.Millisecond)
	}
	d.sigkill()

	d2 := startDaemon(t, "-workers", "1", "-journal", journal, "-store", storeDir)
	cli2 := d2.client()

	// (a) The acked result survived the crash, byte for byte, and a
	// repeat submission is answered without another engine run.
	got := waitManifest(t, cli2, acked.Key, 30*time.Second)
	if !bytes.Equal(got, ackedManifest) {
		t.Error("acked manifest changed across SIGKILL + restart")
	}
	again := submitDone(t, cli2, chaosReq(fastIters, true))
	if !again.Cached {
		t.Errorf("persisted key re-ran the engine after restart: %+v", again)
	}

	// (b) The unfinished job is recovered from the journal and its
	// manifest matches a clean run on a fresh daemon (same binary, so
	// the manifests must agree in every byte).
	recovered := waitManifest(t, cli2, inflight.Key, 3*time.Minute)
	d2.terminate(t)

	ref := startDaemon(t, "-workers", "1")
	refSt := submitDone(t, ref.client(), chaosReq(slowIters, true))
	if refSt.Key != inflight.Key {
		t.Fatalf("reference key %s != in-flight key %s", refSt.Key, inflight.Key)
	}
	refManifest := fetchManifest(t, ref.client(), refSt.Key)
	ref.terminate(t)
	if !bytes.Equal(recovered, refManifest) {
		t.Error("journal-recovered manifest differs from a clean engine run")
	}
}

// TestStoreCorruptionQuarantine flips a byte in a persisted entry and
// restarts: the startup scan must quarantine the damaged file (move,
// never delete) while the daemon keeps serving, and a re-submission
// must reproduce the original bytes.
func TestStoreCorruptionQuarantine(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "store")

	d := startDaemon(t, "-workers", "1", "-store", storeDir)
	st := submitDone(t, d.client(), chaosReq(fastIters, true))
	orig := fetchManifest(t, d.client(), st.Key)
	d.terminate(t) // the drain flushes the persister

	entry := filepath.Join(storeDir, st.Key[:2], st.Key)
	data, err := os.ReadFile(entry)
	if err != nil {
		t.Fatalf("read persisted entry: %v", err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(entry, data, 0o644); err != nil {
		t.Fatalf("corrupt entry: %v", err)
	}

	d2 := startDaemon(t, "-workers", "1", "-store", storeDir)
	cli2 := d2.client()

	// The corrupt entry must not be served: the key is a miss now.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err = cli2.Result(ctx, st.Key)
	var ae *server.APIError
	if !errors.As(err, &ae) || ae.Status != 404 {
		t.Fatalf("corrupt entry lookup: err = %v, want a 404 miss", err)
	}

	// Quarantined, not deleted: the damaged bytes moved under
	// quarantine/ next to a report line naming the key.
	if _, err := os.Stat(entry); !os.IsNotExist(err) {
		t.Errorf("corrupt entry still in its shard (err=%v)", err)
	}
	qdir := filepath.Join(storeDir, "quarantine")
	ents, err := os.ReadDir(qdir)
	if err != nil {
		t.Fatalf("quarantine dir: %v", err)
	}
	var preserved, reported bool
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(qdir, e.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", e.Name(), err)
		}
		if bytes.Equal(b, data) {
			preserved = true
		}
		if e.Name() == "report.jsonl" && strings.Contains(string(b), st.Key) {
			reported = true
		}
	}
	if !preserved {
		t.Error("damaged bytes not preserved in quarantine/")
	}
	if !reported {
		t.Error("quarantine report.jsonl does not name the damaged key")
	}

	// The daemon keeps serving: a re-submission re-runs the engine and
	// reproduces the original bytes.
	st2 := submitDone(t, cli2, chaosReq(fastIters, true))
	if !bytes.Equal(fetchManifest(t, cli2, st2.Key), orig) {
		t.Error("re-run after quarantine is not byte-identical to the original")
	}
	d2.terminate(t)
}

// TestJournalCorruptionSalvage appends garbage and a torn line to the
// recovery journal: startup must salvage the parseable records, keep
// the damaged original at <journal>.corrupt, and serve as usual.
func TestJournalCorruptionSalvage(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal.jsonl")

	d := startDaemon(t, "-workers", "1", "-journal", journal)
	submitDone(t, d.client(), chaosReq(fastIters, true))
	d.terminate(t)

	f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	// A binary-garbage line, then a torn record with no newline — the
	// shape a crash mid-append leaves behind.
	if _, err := f.WriteString("\x00\x7fgarbage not json\n{\"op\":\"admit\",\"id\":\"tr"); err != nil {
		t.Fatalf("damage journal: %v", err)
	}
	f.Close()

	d2 := startDaemon(t, "-workers", "1", "-journal", journal)
	st := submitDone(t, d2.client(), chaosReq(fastIters, true))
	if st.State != "done" {
		t.Fatalf("daemon not serving after journal salvage: %+v", st)
	}
	if _, err := os.Stat(journal + ".corrupt"); err != nil {
		t.Errorf("damaged journal not preserved at .corrupt: %v", err)
	}
	d2.terminate(t)
}

// TestENOSPCPersistence runs the server in-process over store.FaultFS:
// with every write and fsync failing (torn), jobs must still complete
// and be served from memory while persist failures are counted, and
// once the "disk" heals persistence resumes.
func TestENOSPCPersistence(t *testing.T) {
	ffs := store.NewFaultFS(store.OS{}, 1, store.FaultConfig{
		WriteEvery: 1, SyncEvery: 1, TornWrites: true})
	ffs.SetEnabled(false) // healthy while the store opens

	s, err := server.New(server.Options{Workers: 1, StoreDir: t.TempDir(),
		StoreFS: ffs, DegradeInterval: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cli := server.NewClient(ts.URL, server.ClientOptions{})

	waitStats := func(what string, ok func(server.Stats) bool) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			st, err := cli.Stats(context.Background())
			if err != nil {
				t.Fatalf("stats: %v", err)
			}
			if ok(st) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s: %+v", what, st.Jobs)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	submitDone(t, cli, chaosReq(1000, true))
	waitStats("first persist", func(st server.Stats) bool { return st.Jobs.Persisted >= 1 })

	// Disk full: results are still computed, acked and served from
	// memory; the write-behind persister records the failures.
	ffs.SetEnabled(true)
	st2 := submitDone(t, cli, chaosReq(2000, true))
	waitStats("persist failure", func(st server.Stats) bool { return st.Jobs.PersistFailed >= 1 })
	if ffs.Injected() == 0 {
		t.Error("FaultFS injected no faults")
	}
	fetchManifest(t, cli, st2.Key)

	// Space freed: persistence resumes without a restart.
	ffs.SetEnabled(false)
	submitDone(t, cli, chaosReq(3000, true))
	waitStats("persist after heal", func(st server.Stats) bool { return st.Jobs.Persisted >= 2 })

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
