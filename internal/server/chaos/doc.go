// Package chaos is the fault-injection acceptance harness for the
// warpsimd daemon: it builds the real binary, runs it as a child
// process, and proves the durability contract under the failures that
// matter in production —
//
//   - SIGKILL mid-job: no acked result is lost, the recovery journal
//     re-runs unfinished work, and recovered manifests are byte-identical
//     to a clean engine run (TestSIGKILLMidJobRecovers);
//   - on-disk corruption of a persisted result: the entry is quarantined
//     (moved, never deleted) while the daemon keeps serving, and the
//     re-run reproduces the original bytes (TestStoreCorruptionQuarantine);
//   - a torn or garbage recovery journal: startup salvages what parses,
//     preserves the damaged original at <journal>.corrupt, and keeps
//     serving (TestJournalCorruptionSalvage);
//   - a full disk: persistence failures are counted, never acked away a
//     result or wedged the daemon, and persistence resumes once space
//     frees up (TestENOSPCPersistence, in-process via store.FaultFS).
//
// The package holds no production code; CI runs it as its own job
// (`go test -race ./internal/server/chaos`).
package chaos
