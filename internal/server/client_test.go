package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fastClientOptions keeps retry tests quick: millisecond backoff.
func fastClientOptions() ClientOptions {
	return ClientOptions{MaxAttempts: 5,
		BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
}

// TestClientRetriesTemporary: 503 then 500 then success — the client
// retries through both and reports two retries.
func TestClientRetriesTemporary(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
		case 2:
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: "oops"})
		default:
			writeJSON(w, http.StatusOK, JobStatus{ID: "j1", Key: "k1", State: "done"})
		}
	}))
	defer ts.Close()

	c := NewClient(ts.URL, fastClientOptions())
	st, err := c.Submit(context.Background(), &JobRequest{Kernel: "TB"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.ID != "j1" || st.Key != "k1" {
		t.Errorf("status = %+v", st)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
	if got := c.Retries(); got != 2 {
		t.Errorf("Retries = %d, want 2", got)
	}
}

// TestClientPermanentFailureNoRetry: a validation failure (400) is
// returned immediately as a typed APIError.
func TestClientPermanentFailureNoRetry(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "unknown gpu"})
	}))
	defer ts.Close()

	c := NewClient(ts.URL, fastClientOptions())
	_, err := c.Submit(context.Background(), &JobRequest{Kernel: "TB"})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.Status != 400 || ae.Msg != "unknown gpu" || ae.Temporary() {
		t.Errorf("APIError = %+v (temporary=%v)", ae, ae.Temporary())
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1 (no retry on 400)", got)
	}
}

// TestClientParsesRetryAfter: the Retry-After header on a shed response
// lands in the typed error.
func TestClientParsesRetryAfter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "queue full"})
	}))
	defer ts.Close()

	c := NewClient(ts.URL, ClientOptions{MaxAttempts: 1})
	_, err := c.Submit(context.Background(), &JobRequest{Kernel: "TB"})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.Status != 429 || ae.RetryAfter != 7 || !ae.Temporary() {
		t.Errorf("APIError = %+v", ae)
	}
}

// TestClientBackoffRespectsContext: with an always-failing server and a
// long Retry-After, cancellation cuts the backoff short and the last
// server failure (not the bare context error) is reported.
func TestClientBackoffRespectsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3600")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "overloaded"})
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := NewClient(ts.URL, fastClientOptions())
	start := time.Now()
	_, err := c.Submit(ctx, &JobRequest{Kernel: "TB"})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Submit blocked %v despite context cancellation", elapsed)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 503 {
		t.Errorf("err = %v, want the provoking 503", err)
	}
}

// TestClientDeadlinePropagation: a context deadline becomes the job's
// admission deadline on the wire.
func TestClientDeadlinePropagation(t *testing.T) {
	var gotDeadline atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decode: %v", err)
		}
		gotDeadline.Store(req.DeadlineMS)
		writeJSON(w, http.StatusOK, JobStatus{ID: "j1", State: "done"})
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	c := NewClient(ts.URL, fastClientOptions())
	if _, err := c.Submit(ctx, &JobRequest{Kernel: "TB"}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if d := gotDeadline.Load(); d <= 0 || d > 500 {
		t.Errorf("DeadlineMS on the wire = %d, want in (0, 500]", d)
	}

	// An explicit deadline wins over the context's.
	if _, err := c.Submit(ctx, &JobRequest{Kernel: "TB", DeadlineMS: 9999}); err != nil {
		t.Fatalf("Submit explicit: %v", err)
	}
	if d := gotDeadline.Load(); d != 9999 {
		t.Errorf("explicit DeadlineMS = %d, want 9999", d)
	}
}

// TestClientHedgedResult: when the first result read stalls past the
// hedge delay, a second is fired and its (faster) answer wins.
func TestClientHedgedResult(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-release // first request stalls until the test ends
			w.Write([]byte(`slow`))
			return
		}
		w.Write([]byte(`fast`))
	}))
	defer ts.Close()
	defer close(release)

	opt := fastClientOptions()
	opt.Hedge = 10 * time.Millisecond
	c := NewClient(ts.URL, opt)
	data, err := c.Result(context.Background(), "somekey")
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if string(data) != "fast" {
		t.Errorf("hedged read returned %q, want the fast leg", data)
	}
	if got := c.Hedges(); got != 1 {
		t.Errorf("Hedges = %d, want 1", got)
	}
}

// TestClientResultMissIsDefinitive: a 404 from the results endpoint is
// never retried or hedged into a retry loop.
func TestClientResultMissIsDefinitive(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no cached result"})
	}))
	defer ts.Close()

	c := NewClient(ts.URL, fastClientOptions())
	_, err := c.Result(context.Background(), "missing")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 404 {
		t.Fatalf("err = %v, want a 404 APIError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1", got)
	}
}

// TestClientTransportFaultRetries: a connection-level failure (server
// closed) exhausts the attempts and surfaces the transport error.
func TestClientTransportFaultRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // immediately: every dial fails

	c := NewClient(ts.URL, ClientOptions{MaxAttempts: 3,
		BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	_, err := c.Submit(context.Background(), &JobRequest{Kernel: "TB"})
	if err == nil {
		t.Fatal("Submit against a dead server succeeded")
	}
	if got := c.Retries(); got != 2 {
		t.Errorf("Retries = %d, want 2 (3 attempts)", got)
	}
}
