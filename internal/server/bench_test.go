package server

import "testing"

func BenchmarkResolveQuickKernel(b *testing.B) {
	o := Options{}
	req := &JobRequest{Kernel: "HT", Config: JobConfig{SMs: 2, Quick: true}}
	for i := 0; i < b.N; i++ {
		if _, rerr := o.Resolve(req); rerr != nil {
			b.Fatal(rerr)
		}
	}
}

func BenchmarkResolveInline(b *testing.B) {
	o := Options{}
	for i := 0; i < b.N; i++ {
		if _, rerr := o.Resolve(inlineReq(1000)); rerr != nil {
			b.Fatal(rerr)
		}
	}
}
