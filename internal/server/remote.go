package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync"

	"warpsched/internal/config"
	"warpsched/internal/exp"
	"warpsched/internal/kernels"
	"warpsched/internal/metrics"
	"warpsched/internal/sim"
	"warpsched/internal/stats"
)

// ErrNotMappable marks a spec the wire format cannot express: kernels
// with host-side closures outside the registered suites, non-default
// BOWS/DDOS parameterizations, machines that are not a (scaled)
// GTX480/GTX1080Ti, or budgets above the default server ceiling.
// Callers (exp.Cfg.Remote adapters) treat it as "run locally instead".
var ErrNotMappable = errors.New("spec cannot be expressed as a job request")

// SpecRequest inverts Options.Resolve: it maps an exp.Spec back to the
// wire request whose admission resolves to the same content address.
// The mapping is proven, not assumed — the built request is resolved
// with the default server options and its CacheKey compared against the
// (budget-normalized) spec's; any mismatch returns ErrNotMappable rather
// than silently fetching the wrong result. Deterministic simulation then
// gives the full guarantee: a daemon result for the returned request is
// byte-for-byte the run the spec describes.
func SpecRequest(spec exp.Spec) (*JobRequest, error) {
	if spec.Kernel == nil || spec.Kernel.Launch.Prog == nil {
		return nil, fmt.Errorf("%w: spec has no kernel", ErrNotMappable)
	}
	norm := spec.Normalized()
	req := &JobRequest{Wait: true}

	if quick, ok := registeredVariant(norm.Kernel); ok {
		req.Kernel = norm.Kernel.Name
		req.Config.Quick = quick
	} else if l := norm.Kernel.Launch; l.Setup == nil && norm.Kernel.Verify == nil {
		// Inline route: only sound when the kernel carries no host-side
		// closures — Setup initializes memory the daemon cannot reproduce
		// and Verify checks outputs the daemon would skip. AllowUnsafe
		// mirrors local-sweep semantics: a sweep runs its programs without
		// the admission race gate, so the remote must too.
		req.Source = l.Prog.Assembly()
		req.Name = norm.Kernel.Name
		req.GridCTAs, req.CTAThreads = l.GridCTAs, l.CTAThreads
		req.MemWords = l.MemWords
		req.Params = append([]uint32(nil), l.Params...)
		req.AllowUnsafe = true
	} else {
		return nil, fmt.Errorf("%w: kernel %q carries host-side Setup/Verify closures and is not in the registered suites",
			ErrNotMappable, norm.Kernel.Name)
	}

	gpu, sms, ok := gpuRequest(norm.GPU)
	if !ok {
		return nil, fmt.Errorf("%w: machine %q is not a (scaled) GTX480 or GTX1080Ti", ErrNotMappable, norm.GPU.Name)
	}
	req.Config.GPU, req.Config.SMs = gpu, sms
	req.Config.Sched = string(norm.Sched)

	mode, delay, ok := bowsRequest(norm.BOWS)
	if !ok {
		return nil, fmt.Errorf("%w: non-default BOWS parameterization", ErrNotMappable)
	}
	req.Config.BOWS, req.Config.Delay = mode, delay

	hash, ok := ddosRequest(norm.DDOS)
	if !ok {
		return nil, fmt.Errorf("%w: non-default DDOS parameterization", ErrNotMappable)
	}
	req.Config.Hash = hash
	req.Config.MaxCycles = norm.MaxCycles

	resolved, rerr := Options{}.Resolve(req)
	if rerr != nil {
		return nil, fmt.Errorf("%w: built request does not resolve: %v", ErrNotMappable, rerr)
	}
	if got, want := CacheKey(resolved), CacheKey(norm); got != want {
		return nil, fmt.Errorf("%w: lossy mapping for kernel %q (request key %s, spec key %s)",
			ErrNotMappable, norm.Kernel.Name, got, want)
	}
	return req, nil
}

// wireSuites caches the assembled kernel registries; building them per
// spec would re-parse every program on each sweep run.
var wireSuites struct {
	once        sync.Once
	full, quick []*kernels.Kernel
}

// registeredVariant reports whether the kernel is byte-identical to a
// registered suite entry (program, geometry and parameters all equal) —
// the condition under which naming it on the wire reproduces the run,
// host-side closures included.
func registeredVariant(k *kernels.Kernel) (quick, ok bool) {
	wireSuites.once.Do(func() {
		wireSuites.full = append(kernels.SyncSuite(), kernels.SyncFreeSuite()...)
		wireSuites.quick = append(kernels.QuickSyncSuite(), kernels.QuickSyncFreeSuite()...)
	})
	match := func(c *kernels.Kernel) bool {
		return c.Name == k.Name &&
			c.Launch.GridCTAs == k.Launch.GridCTAs &&
			c.Launch.CTAThreads == k.Launch.CTAThreads &&
			c.Launch.MemWords == k.Launch.MemWords &&
			reflect.DeepEqual(c.Launch.Params, k.Launch.Params) &&
			c.Launch.Prog.Assembly() == k.Launch.Prog.Assembly()
	}
	for _, c := range wireSuites.full {
		if match(c) {
			return false, true
		}
	}
	for _, c := range wireSuites.quick {
		if match(c) {
			return true, true
		}
	}
	return false, false
}

// gpuRequest maps a machine back to its wire name and SM override. The
// budget is neutralized before comparison — it rides in max_cycles, not
// in the machine selection.
func gpuRequest(g config.GPU) (name string, sms int, ok bool) {
	for _, b := range []struct {
		name string
		gpu  config.GPU
	}{{"fermi", config.GTX480()}, {"pascal", config.GTX1080Ti()}} {
		cand, n := b.gpu, 0
		if g.NumSMs != cand.NumSMs {
			n = g.NumSMs
			cand = cand.Scaled(n)
		}
		cand.MaxCycles = g.MaxCycles
		if reflect.DeepEqual(cand, g) {
			return b.name, n, true
		}
	}
	return "", 0, false
}

// bowsRequest maps a BOWS configuration back to the wire's mode + delay
// vocabulary (off, the paper's adaptive default, or a fixed limit).
func bowsRequest(b config.BOWS) (mode string, delay *int64, ok bool) {
	if reflect.DeepEqual(b, config.BOWS{Mode: config.BOWSOff}) {
		return "off", nil, true
	}
	switch b.Mode {
	case config.BOWSDDOS:
		mode = "ddos"
	case config.BOWSStatic:
		mode = "static"
	default:
		return "", nil, false
	}
	cand := config.DefaultBOWS()
	cand.Mode = b.Mode
	if reflect.DeepEqual(cand, b) {
		return mode, nil, true
	}
	fixed := config.FixedBOWS(b.DelayLimit)
	fixed.Mode = b.Mode
	if reflect.DeepEqual(fixed, b) {
		d := b.DelayLimit
		return mode, &d, true
	}
	return "", nil, false
}

// ddosRequest maps a detector configuration back to the wire's hash
// selector (the only DDOS dimension the API exposes).
func ddosRequest(d config.DDOS) (hash string, ok bool) {
	if reflect.DeepEqual(d, config.DefaultDDOS()) {
		return "", true
	}
	cand := config.DefaultDDOS()
	cand.Hash = "MODULO"
	if reflect.DeepEqual(cand, d) {
		return "MODULO", true
	}
	return "", false
}

// RunSpec submits the spec as a synchronous job and rebuilds the
// sweep-facing outcome from the daemon's result manifest: headline
// cycles plus every manifest counter (stats.FromCounters), with the
// run's error string rehydrated — the same partial-result convention a
// watchdog abort has locally. Engine-only outputs (memory image,
// detection metrics, per-SM state) are not on the wire; see
// exp.Experiment.RemoteSafe for who may consume such an outcome.
// Mapping failures wrap ErrNotMappable so callers can fall back to the
// local engine.
func (c *Client) RunSpec(ctx context.Context, spec exp.Spec) (exp.Outcome, error) {
	req, err := SpecRequest(spec)
	if err != nil {
		return exp.Outcome{}, err
	}
	st, err := c.Submit(ctx, req)
	if err != nil {
		return exp.Outcome{}, err
	}
	data, err := c.Result(ctx, st.Key)
	if err != nil {
		return exp.Outcome{}, err
	}
	return outcomeFromManifest(data)
}

// outcomeFromManifest rebuilds an Outcome from a single-run result
// manifest.
func outcomeFromManifest(data []byte) (exp.Outcome, error) {
	var m metrics.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return exp.Outcome{}, fmt.Errorf("parse result manifest: %w", err)
	}
	if len(m.Runs) != 1 {
		return exp.Outcome{}, fmt.Errorf("result manifest has %d runs, want 1", len(m.Runs))
	}
	rec := m.Runs[0]
	var out exp.Outcome
	if rec.Counters != nil {
		out.Res = &sim.Result{Stats: *stats.FromCounters(rec.Cycles, rec.Counters)}
	}
	if rec.Err != "" {
		out.Err = errors.New(rec.Err)
	}
	return out, nil
}
