package server

import (
	"encoding/json"
	"net/http"
	"strconv"

	"warpsched/internal/analysis"
)

// JobStatus is the wire form of a job: the POST /v1/jobs and
// GET /v1/jobs/{id} payload.
type JobStatus struct {
	// ID addresses the job at GET /v1/jobs/{id}. Identical concurrent
	// submissions share one id (single-flight).
	ID string `json:"id"`
	// Key is the result's content address (GET /v1/results/{key}).
	Key string `json:"key"`
	// State is queued, running or done.
	State string `json:"state"`
	// Cached reports that the result was served from the cache with no
	// engine run.
	Cached bool `json:"cached"`
	// Cycles is the live progress (cycles simulated so far) while
	// running, and the final cycle count once done.
	Cycles int64 `json:"cycles"`
	// Err is the simulation error, set only when done and failed.
	Err string `json:"err,omitempty"`
}

// errorBody is the JSON body of every non-2xx response. Findings use
// the same wire shape as `warplint -json` schema 2 (category, class,
// pc, other_pc); Schema names that version when findings are present.
type errorBody struct {
	Error    string             `json:"error"`
	Schema   int                `json:"schema,omitempty"`
	Findings []analysis.Finding `json:"findings,omitempty"`
}

// status snapshots a job for the wire.
func (s *Server) status(j *job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := JobStatus{ID: j.ids[0], Key: j.key, State: string(j.state), Cached: j.cached}
	if j.state == stateDone {
		st.Cycles = j.result.Cycles
		st.Err = j.result.Err
	} else {
		st.Cycles = j.progress.Load()
	}
	return st
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs          submit a job (sync with "wait": true)
//	GET  /v1/jobs/{id}     job state and progress
//	GET  /v1/results/{key} full schema-2 result manifest
//	GET  /v1/stats         cache, queue and latency statistics
//	GET  /healthz          liveness (503 while draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

// maxRequestBytes bounds a job request body (inline programs included).
const maxRequestBytes = 4 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decode request: " + err.Error()})
		return
	}
	j, rerr := s.Submit(&req)
	if rerr != nil {
		body := errorBody{Error: rerr.Msg, Findings: rerr.Findings}
		if len(rerr.Findings) > 0 {
			body.Schema = 2
		}
		if rerr.RetryAfter > 0 {
			// Shed responses (deadline-infeasible, queue full, breaker
			// open) tell well-behaved clients when to come back.
			w.Header().Set("Retry-After", strconv.Itoa(rerr.RetryAfter))
		}
		writeJSON(w, rerr.Status, body)
		return
	}
	if req.Wait {
		select {
		case <-j.done:
			writeJSON(w, http.StatusOK, s.status(j))
		case <-r.Context().Done():
			// The client gave up; the job keeps running and stays
			// addressable by id.
			writeJSON(w, http.StatusRequestTimeout, errorBody{Error: "client cancelled; job continues as " + j.ids[0]})
		}
		return
	}
	st := s.status(j)
	code := http.StatusAccepted
	if st.State == string(stateDone) {
		code = http.StatusOK // admission-time cache hit
	}
	writeJSON(w, code, st)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, ok := s.Result(r.PathValue("key"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no cached result for " + r.PathValue("key")})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(res.Manifest)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.drain
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
