package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// APIError is a non-2xx response from the daemon, decoded from the
// standard error body when present.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Msg is the server's error string (or the raw body when it was not
	// the standard error shape).
	Msg string
	// RetryAfter is the server's Retry-After hint in seconds (0 = none).
	// Shed responses (deadline-infeasible, queue full, breaker open)
	// carry it; the client's backoff honors it.
	RetryAfter int
}

// Error renders the failure with its status code.
func (e *APIError) Error() string { return "warpsimd: http " + strconv.Itoa(e.Status) + ": " + e.Msg }

// Temporary reports whether retrying the same request can succeed:
// shed/overload responses and server faults, but never validation
// failures (4xx other than 408/429) or cache misses (404).
func (e *APIError) Temporary() bool {
	switch e.Status {
	case http.StatusRequestTimeout, http.StatusTooManyRequests,
		http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// ClientOptions tunes a Client; the zero value is production-ready.
type ClientOptions struct {
	// HTTP is the underlying transport (default http.DefaultClient). Note
	// that synchronous submissions block for the whole simulation, so a
	// client with a short Timeout will cut long jobs off.
	HTTP *http.Client
	// MaxAttempts bounds tries per call, first attempt included
	// (default 5). Retrying a submission is free on the server side:
	// content addressing and single-flight make POST /v1/jobs idempotent —
	// a resubmission either hits the cache or attaches to the in-flight
	// job, never runs the engine twice.
	MaxAttempts int
	// BaseBackoff is the first retry's backoff ceiling; each further
	// attempt doubles it up to MaxBackoff, and the actual sleep is
	// uniformly jittered in [0, ceiling] ("full jitter") so a fleet of
	// clients shed by one overloaded daemon does not return in lockstep.
	// A server Retry-After hint overrides shorter jittered sleeps.
	// Defaults: 100ms base, 5s max.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Hedge, when positive, arms hedged result reads: if GET
	// /v1/results/{key} has not answered within this duration, a second
	// identical request is fired and the first success wins. Safe because
	// result reads are immutable lookups. Zero disables hedging.
	Hedge time.Duration
	// Log, when non-nil, receives one line per retry and hedge.
	Log func(format string, args ...any)
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.HTTP == nil {
		o.HTTP = http.DefaultClient
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	return o
}

// Client is a hardened client for the warpsimd HTTP API: capped
// exponential backoff with full jitter on shed/fault responses and
// transport errors, Retry-After honoring, context-deadline propagation
// into the job's admission deadline, and optional hedged result reads.
// Safe for concurrent use.
type Client struct {
	base string
	opt  ClientOptions

	rngMu sync.Mutex
	rng   *rand.Rand

	retries atomic.Int64
	hedges  atomic.Int64
}

// NewClient returns a client for the daemon at base (e.g.
// "http://localhost:8723").
func NewClient(base string, opt ClientOptions) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		opt:  opt.withDefaults(),
		rng:  rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Retries returns the lifetime count of retried calls.
func (c *Client) Retries() int64 { return c.retries.Load() }

// Hedges returns the lifetime count of hedge requests fired.
func (c *Client) Hedges() int64 { return c.hedges.Load() }

// Submit posts one job. When the request has no explicit DeadlineMS and
// ctx carries a deadline, the remaining time is propagated as the job's
// admission deadline — recomputed per attempt, so backoff sleeps shrink
// the budget the server sees instead of overstating it.
func (c *Client) Submit(ctx context.Context, req *JobRequest) (JobStatus, error) {
	var st JobStatus
	err := c.retry(ctx, func(ctx context.Context) error {
		r := *req
		if r.DeadlineMS == 0 {
			if dl, ok := ctx.Deadline(); ok {
				ms := time.Until(dl).Milliseconds()
				if ms < 1 {
					return context.DeadlineExceeded
				}
				r.DeadlineMS = ms
			}
		}
		body, err := json.Marshal(&r)
		if err != nil {
			return err
		}
		data, err := c.do(ctx, http.MethodPost, "/v1/jobs", body)
		if err != nil {
			return err
		}
		return json.Unmarshal(data, &st)
	})
	return st, err
}

// Job fetches a job's state and progress.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.retry(ctx, func(ctx context.Context) error {
		data, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil)
		if err != nil {
			return err
		}
		return json.Unmarshal(data, &st)
	})
	return st, err
}

// Result fetches the raw result manifest for a content address. A 404 is
// definitive (the key is not cached) and never retried. With
// ClientOptions.Hedge set, each attempt races a second request after the
// hedge delay.
func (c *Client) Result(ctx context.Context, key string) ([]byte, error) {
	var out []byte
	err := c.retry(ctx, func(ctx context.Context) error {
		var err error
		out, err = c.resultOnce(ctx, key)
		return err
	})
	return out, err
}

// Stats fetches the daemon's statistics snapshot.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.retry(ctx, func(ctx context.Context) error {
		data, err := c.do(ctx, http.MethodGet, "/v1/stats", nil)
		if err != nil {
			return err
		}
		return json.Unmarshal(data, &st)
	})
	return st, err
}

// retry runs f with bounded retries on temporary failures. The error
// returned is always the last call's — a backoff interrupted by context
// cancellation reports the failure that provoked it, which is the
// diagnosis the caller wants.
func (c *Client) retry(ctx context.Context, f func(context.Context) error) error {
	var err error
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		if attempt > 0 {
			if werr := c.backoff(ctx, attempt, err); werr != nil {
				return err
			}
			c.retries.Add(1)
		}
		err = f(ctx)
		if err == nil || !retryable(err) || ctx.Err() != nil {
			return err
		}
	}
	return err
}

// retryable classifies an error: API errors by their status, context
// errors never, everything else (connection refused/reset, truncated
// bodies) as transient transport faults.
func retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Temporary()
	}
	return true
}

// backoff sleeps before retry number attempt (1-based), honoring a
// server Retry-After hint when it exceeds the jittered exponential wait.
func (c *Client) backoff(ctx context.Context, attempt int, last error) error {
	ceil := c.opt.BaseBackoff << (attempt - 1)
	if ceil > c.opt.MaxBackoff || ceil <= 0 {
		ceil = c.opt.MaxBackoff
	}
	c.rngMu.Lock()
	d := time.Duration(c.rng.Int63n(int64(ceil) + 1))
	c.rngMu.Unlock()
	var ae *APIError
	if errors.As(last, &ae) && ae.RetryAfter > 0 {
		if ra := time.Duration(ae.RetryAfter) * time.Second; ra > d {
			d = ra
		}
	}
	if c.opt.Log != nil {
		c.opt.Log("client: attempt %d in %s after: %v", attempt+1, d.Round(time.Millisecond), last)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// resultOnce is one (possibly hedged) result fetch.
func (c *Client) resultOnce(ctx context.Context, key string) ([]byte, error) {
	path := "/v1/results/" + url.PathEscape(key)
	if c.opt.Hedge <= 0 {
		return c.do(ctx, http.MethodGet, path, nil)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // reels in the losing request
	type reply struct {
		data []byte
		err  error
	}
	ch := make(chan reply, 2)
	fire := func() {
		go func() {
			data, err := c.do(hctx, http.MethodGet, path, nil)
			ch <- reply{data, err}
		}()
	}
	fire()
	inflight, hedged := 1, false
	timer := time.NewTimer(c.opt.Hedge)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				return r.data, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if inflight--; inflight == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				c.hedges.Add(1)
				if c.opt.Log != nil {
					c.opt.Log("client: hedging result read for %s after %s", key, c.opt.Hedge)
				}
				fire()
				inflight++
			}
		case <-hctx.Done():
			return nil, hctx.Err()
		}
	}
}

// maxResponseBytes bounds a response body read (a full manifest is KBs;
// this is pure paranoia against a misbehaving endpoint).
const maxResponseBytes = 64 << 20

// do performs one HTTP round trip and maps non-2xx responses to
// *APIError.
func (c *Client) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.opt.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		ae := &APIError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			ae.Msg = eb.Error
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, aerr := strconv.Atoi(ra); aerr == nil && secs > 0 {
				ae.RetryAfter = secs
			}
		}
		return nil, ae
	}
	return data, nil
}
