// Package sched is the warp scheduling policy surface: the baseline
// policies the paper evaluates BOWS against — Loose Round-Robin (LRR),
// Greedy-Then-Oldest (GTO, Rogers et al.) with the paper's periodic age
// rotation, and Criticality-Aware Warp Acceleration (CAWA, Lee et al.)
// — plus the prefetch-mimicking WaSP policy (Joseph et al., arXiv
// 2404.06156) added by the scheduler-zoo extension.
//
// A Policy instance owns the warp slots of one scheduler unit within an
// SM (warps are statically partitioned among schedulers). Each cycle the
// SM pipeline calls Pick with a readiness predicate; the policy returns
// the slot to issue from or -1. BOWS (internal/core) wraps any Policy.
// docs/SCHEDULERS.md walks through the contract and how to add a new
// policy end to end.
package sched

import (
	"fmt"

	"warpsched/internal/config"
	"warpsched/internal/metrics"
)

// WarpMetrics is per-warp run-time accounting shared between the SM
// pipeline (writer) and policies such as CAWA (reader).
type WarpMetrics struct {
	// Issued counts instructions issued by the warp.
	Issued int64
	// ResidentCycles counts cycles the warp was resident and unfinished.
	ResidentCycles int64
	// StallCycles counts resident cycles where the warp could not issue
	// (CAWA's nStall).
	StallCycles int64
	// EstRemaining is CAWA's dynamic remaining-instruction estimate
	// (nInst), updated from branch directions.
	EstRemaining int64
	// Resident marks the slot as holding a live warp.
	Resident bool
}

// CPIAvg returns the warp's average cycles per issued instruction.
func (m *WarpMetrics) CPIAvg() float64 {
	if m.Issued == 0 {
		return 1
	}
	return float64(m.ResidentCycles) / float64(m.Issued)
}

// Policy selects which warp a scheduler unit issues from each cycle.
type Policy interface {
	Name() string
	// Pick returns the slot (SM-wide index) to issue from among this
	// unit's slots for which ready(slot) is true, or -1 if none.
	Pick(cycle int64, ready func(slot int) bool) int
	// OnIssue informs the policy that slot issued at cycle.
	OnIssue(slot int, cycle int64)
	// OnBranch informs the policy of a branch outcome (CAWA's
	// direction-based remaining-instruction estimate).
	OnBranch(slot int, backwardTaken bool)
}

// Instrumented is implemented by policies that export internal counters
// to a metrics registry under a hierarchical prefix (e.g.
// "sm0.sched.u1."). Registration must not change scheduling behavior.
type Instrumented interface {
	RegisterMetrics(r *metrics.Registry, prefix string)
}

// Params carries the per-kind tuning knobs New threads to the policy it
// builds. Kinds ignore knobs that do not concern them, so a caller may
// always populate the whole struct.
type Params struct {
	// GTORotatePeriod is GTO's anti-livelock age rotation period in
	// cycles (paper §IV-C).
	GTORotatePeriod int64
	// WaSP holds the WASP priority-group knobs.
	WaSP config.WaSP
}

// New builds a policy of the given kind for a scheduler unit owning
// slots (SM-wide warp slot indexes). metrics is the SM-wide per-slot
// metrics table. An unknown kind yields an error enumerating the valid
// kinds, which the CLIs surface as a usage error.
func New(kind config.SchedulerKind, slots []int, metrics []WarpMetrics, p Params) (Policy, error) {
	switch kind {
	case config.LRR:
		return NewLRR(slots), nil
	case config.GTO:
		return NewGTO(slots, p.GTORotatePeriod), nil
	case config.CAWA:
		return NewCAWA(slots, metrics), nil
	case config.WASP:
		return NewWaSP(slots, p.WaSP), nil
	default:
		return nil, fmt.Errorf("sched: unknown scheduler kind %q (valid kinds: %v)",
			kind, config.AllSchedulers)
	}
}

// LRR is loose round-robin: scheduling starts from the warp after the
// last issued one, taking the first ready warp.
type LRR struct {
	slots []int
	next  int // index into slots to start the scan from
}

// NewLRR returns an LRR policy over slots.
func NewLRR(slots []int) *LRR { return &LRR{slots: slots} }

// Name implements Policy.
func (l *LRR) Name() string { return string(config.LRR) }

// Pick implements Policy.
func (l *LRR) Pick(_ int64, ready func(int) bool) int {
	n := len(l.slots)
	for i := 0; i < n; i++ {
		s := l.slots[(l.next+i)%n]
		if ready(s) {
			return s
		}
	}
	return -1
}

// OnIssue implements Policy.
func (l *LRR) OnIssue(slot int, _ int64) {
	for i, s := range l.slots {
		if s == slot {
			l.next = (i + 1) % len(l.slots)
			return
		}
	}
}

// OnBranch implements Policy.
func (l *LRR) OnBranch(int, bool) {}

// GTO is greedy-then-oldest: keep issuing from the last warp until it
// stalls, then fall back to the oldest ready warp (lowest slot). Strict
// GTO can livelock busy-wait kernels (paper §IV-C observed this on HT and
// ATM), so the age order rotates every rotatePeriod cycles.
type GTO struct {
	slots        []int
	last         int // last issued slot, -1 if none
	rotatePeriod int64
	rot          int

	// greedyPicks counts issues kept on the last warp; agedPicks counts
	// fallbacks to the rotated age order. Their ratio measures how greedy
	// the workload lets GTO be.
	greedyPicks int64
	agedPicks   int64
}

// NewGTO returns a GTO policy over slots.
func NewGTO(slots []int, rotatePeriod int64) *GTO {
	return &GTO{slots: slots, last: -1, rotatePeriod: rotatePeriod}
}

// Name implements Policy.
func (g *GTO) Name() string { return string(config.GTO) }

// Pick implements Policy.
func (g *GTO) Pick(cycle int64, ready func(int) bool) int {
	if g.rotatePeriod > 0 {
		g.rot = int(cycle/g.rotatePeriod) % len(g.slots)
	}
	if g.last >= 0 && ready(g.last) {
		g.greedyPicks++
		return g.last
	}
	// Scan in rotated order as two straight runs (no per-slot modulo).
	for _, s := range g.slots[g.rot:] {
		if ready(s) {
			g.agedPicks++
			return s
		}
	}
	for _, s := range g.slots[:g.rot] {
		if ready(s) {
			g.agedPicks++
			return s
		}
	}
	return -1
}

// RegisterMetrics implements Instrumented.
func (g *GTO) RegisterMetrics(r *metrics.Registry, prefix string) {
	r.Int64(prefix+"gto_greedy_picks", &g.greedyPicks)
	r.Int64(prefix+"gto_aged_picks", &g.agedPicks)
}

// OnIssue implements Policy.
func (g *GTO) OnIssue(slot int, _ int64) { g.last = slot }

// OnBranch implements Policy.
func (g *GTO) OnBranch(int, bool) {}

// CAWA estimates warp criticality as nInst × CPIavg + nStall (paper §II)
// and prioritizes the most critical ready warp. nInst is a remaining-
// instruction estimate driven by branch directions: a taken backward
// branch predicts another loop iteration's worth of instructions. This
// reproduces the pathology the paper identifies: spinning warps keep
// taking backward branches and accumulating stall cycles, so CAWA keeps
// prioritizing them.
type CAWA struct {
	slots   []int
	metrics []WarpMetrics
	last    int
}

// LoopEstimate is the instruction-count increment charged per taken
// backward branch (one predicted loop iteration).
const LoopEstimate = 16

// NewCAWA returns a CAWA policy over slots reading the SM-wide metrics
// table.
func NewCAWA(slots []int, metrics []WarpMetrics) *CAWA {
	return &CAWA{slots: slots, metrics: metrics, last: -1}
}

// Name implements Policy.
func (c *CAWA) Name() string { return string(config.CAWA) }

// Criticality returns the CAWA criticality metric for slot.
func (c *CAWA) Criticality(slot int) float64 {
	m := &c.metrics[slot]
	return float64(m.EstRemaining)*m.CPIAvg() + float64(m.StallCycles)
}

// Pick implements Policy.
func (c *CAWA) Pick(_ int64, ready func(int) bool) int {
	best, bestCrit := -1, 0.0
	for _, s := range c.slots {
		if !ready(s) {
			continue
		}
		crit := c.Criticality(s)
		// Ties break toward the last issued warp, then lowest slot.
		if best == -1 || crit > bestCrit || (crit == bestCrit && s == c.last) {
			best, bestCrit = s, crit
		}
	}
	return best
}

// OnIssue implements Policy.
func (c *CAWA) OnIssue(slot int, _ int64) {
	c.last = slot
	if m := &c.metrics[slot]; m.EstRemaining > 0 {
		m.EstRemaining--
	}
}

// OnBranch implements Policy.
func (c *CAWA) OnBranch(slot int, backwardTaken bool) {
	if backwardTaken {
		c.metrics[slot].EstRemaining += LoopEstimate
	}
}

// WaSP is the prefetch-mimicking priority-group policy (Joseph et al.,
// arXiv 2404.06156): a small priority group of warps always outranks
// the trailing warps, so the group runs ahead and its memory misses
// warm the caches for the trailing group — a de-facto prefetcher with
// no prefetch hardware. The priority window advances by GroupSize slots
// every RotatePeriod cycles, so leadership (and the attendant extra
// miss latency) rotates through the whole unit.
//
// The rotation is a pure function of the cycle number, like GTO's age
// rotation: the policy carries no phase state, which keeps Pick
// deterministic and makes the fast-forward clock trivially safe to skip
// over it.
type WaSP struct {
	slots []int
	cfg   config.WaSP
	pos   map[int]int // slot -> index in slots
	last  int         // last issued slot, -1 if none

	// priorityPicks counts issues from the priority group, trailingPicks
	// issues that fell through to the trailing group. Their ratio shows
	// how strongly the group is actually leading.
	priorityPicks int64
	trailingPicks int64
}

// NewWaSP returns a WaSP policy over slots with the given group knobs.
func NewWaSP(slots []int, cfg config.WaSP) *WaSP {
	w := &WaSP{slots: slots, cfg: cfg, last: -1, pos: make(map[int]int, len(slots))}
	for i, s := range slots {
		w.pos[s] = i
	}
	return w
}

// Name implements Policy.
func (w *WaSP) Name() string { return string(config.WASP) }

// groupStart returns the priority window's first slot index for cycle.
func (w *WaSP) groupStart(cycle int64) int {
	g := w.groupSize()
	phase := cycle / w.cfg.RotatePeriod
	return int((phase * int64(g)) % int64(len(w.slots)))
}

// groupSize returns the effective priority-group size (clamped to the
// unit width so a unit narrower than the knob still has a trailing-free
// group rather than an out-of-range scan).
func (w *WaSP) groupSize() int {
	if g := w.cfg.GroupSize; g < len(w.slots) {
		return g
	}
	return len(w.slots)
}

// Pick implements Policy: greedy on the last issued warp while it stays
// in the priority group (long issue runs are what generate the group's
// early misses), then the priority group in window order, then the
// trailing warps in window order.
func (w *WaSP) Pick(cycle int64, ready func(int) bool) int {
	n := len(w.slots)
	g := w.groupSize()
	start := w.groupStart(cycle)
	if w.last >= 0 && ready(w.last) {
		if d := (w.pos[w.last] - start + n) % n; d < g {
			w.priorityPicks++
			return w.last
		}
	}
	for i := 0; i < n; i++ {
		s := w.slots[(start+i)%n]
		if ready(s) {
			if i < g {
				w.priorityPicks++
			} else {
				w.trailingPicks++
			}
			return s
		}
	}
	return -1
}

// OnIssue implements Policy.
func (w *WaSP) OnIssue(slot int, _ int64) { w.last = slot }

// OnBranch implements Policy.
func (w *WaSP) OnBranch(int, bool) {}

// RegisterMetrics implements Instrumented.
func (w *WaSP) RegisterMetrics(r *metrics.Registry, prefix string) {
	r.Int64(prefix+"wasp_priority_picks", &w.priorityPicks)
	r.Int64(prefix+"wasp_trailing_picks", &w.trailingPicks)
}
