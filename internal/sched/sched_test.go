package sched

import (
	"testing"

	"warpsched/internal/config"
)

func readySet(slots ...int) func(int) bool {
	set := map[int]bool{}
	for _, s := range slots {
		set[s] = true
	}
	return func(s int) bool { return set[s] }
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := New("BOGUS", []int{0}, nil, 0); err == nil {
		t.Fatal("unknown scheduler kind must error")
	}
}

func TestLRRRotation(t *testing.T) {
	l := NewLRR([]int{0, 1, 2, 3})
	if got := l.Pick(0, readySet(0, 1, 2, 3)); got != 0 {
		t.Fatalf("first pick = %d, want 0", got)
	}
	l.OnIssue(0, 0)
	if got := l.Pick(1, readySet(0, 1, 2, 3)); got != 1 {
		t.Fatalf("after issuing 0, pick = %d, want 1", got)
	}
	l.OnIssue(1, 1)
	// Slot 2 not ready: skip to 3.
	if got := l.Pick(2, readySet(0, 1, 3)); got != 3 {
		t.Fatalf("pick = %d, want 3", got)
	}
	l.OnIssue(3, 2)
	if got := l.Pick(3, readySet(0)); got != 0 {
		t.Fatalf("wraparound pick = %d, want 0", got)
	}
	if got := l.Pick(4, readySet()); got != -1 {
		t.Fatalf("no ready warps should give -1, got %d", got)
	}
}

func TestGTOGreedyThenOldest(t *testing.T) {
	g := NewGTO([]int{0, 1, 2, 3}, 0)
	if got := g.Pick(0, readySet(1, 2)); got != 1 {
		t.Fatalf("oldest ready = %d, want 1", got)
	}
	g.OnIssue(2, 0)
	// Greedy: last issued (2) preferred while ready, even over older 1.
	if got := g.Pick(1, readySet(1, 2)); got != 2 {
		t.Fatalf("greedy pick = %d, want 2", got)
	}
	// When 2 stalls, fall back to the oldest ready.
	if got := g.Pick(2, readySet(1, 3)); got != 1 {
		t.Fatalf("fallback pick = %d, want 1", got)
	}
}

func TestGTOAgeRotation(t *testing.T) {
	g := NewGTO([]int{0, 1, 2, 3}, 100)
	// In the second rotation period the age order starts from slot 1.
	if got := g.Pick(150, readySet(0, 1, 2, 3)); got != 1 {
		t.Fatalf("rotated oldest = %d, want 1", got)
	}
	if got := g.Pick(250, readySet(0, 1, 2, 3)); got != 2 {
		t.Fatalf("rotated oldest = %d, want 2", got)
	}
	// Rotation wraps around the slot count.
	if got := g.Pick(450, readySet(0, 1, 2, 3)); got != 0 {
		t.Fatalf("wrapped rotation = %d, want 0", got)
	}
}

func TestCAWAPrioritizesCriticalWarp(t *testing.T) {
	metrics := make([]WarpMetrics, 4)
	c := NewCAWA([]int{0, 1, 2, 3}, metrics)
	// Slot 2: many stalls and high CPI — most critical.
	metrics[2] = WarpMetrics{Issued: 10, ResidentCycles: 1000, StallCycles: 900, EstRemaining: 50}
	metrics[1] = WarpMetrics{Issued: 100, ResidentCycles: 200, StallCycles: 50, EstRemaining: 10}
	if got := c.Pick(0, readySet(1, 2)); got != 2 {
		t.Fatalf("CAWA pick = %d, want critical slot 2", got)
	}
	// If 2 is not ready, take the next most critical.
	if got := c.Pick(0, readySet(1, 3)); got != 1 {
		t.Fatalf("CAWA pick = %d, want 1", got)
	}
}

func TestCAWABranchGrowsEstimate(t *testing.T) {
	metrics := make([]WarpMetrics, 2)
	c := NewCAWA([]int{0, 1}, metrics)
	before := metrics[0].EstRemaining
	c.OnBranch(0, true)
	if metrics[0].EstRemaining != before+LoopEstimate {
		t.Fatalf("taken backward branch must add %d to nInst", LoopEstimate)
	}
	c.OnBranch(0, false)
	if metrics[0].EstRemaining != before+LoopEstimate {
		t.Fatal("forward/not-taken branch must not change nInst")
	}
	c.OnIssue(0, 0)
	if metrics[0].EstRemaining != before+LoopEstimate-1 {
		t.Fatal("issue must decrement nInst")
	}
}

func TestCAWASpinningWarpStaysCritical(t *testing.T) {
	// The paper's observation: a spinning warp keeps taking backward
	// branches and stalling, so CAWA keeps prioritizing it.
	metrics := make([]WarpMetrics, 2)
	c := NewCAWA([]int{0, 1}, metrics)
	metrics[0].Resident = true
	metrics[1].Resident = true
	for i := 0; i < 100; i++ {
		// Slot 0 spins: issues, stalls, takes backward branches.
		c.OnIssue(0, int64(i))
		metrics[0].Issued++
		metrics[0].ResidentCycles += 10
		metrics[0].StallCycles += 9
		c.OnBranch(0, true)
		// Slot 1 progresses: issues frequently, no backward branches.
		metrics[1].Issued += 5
		metrics[1].ResidentCycles += 10
		metrics[1].StallCycles++
	}
	if c.Criticality(0) <= c.Criticality(1) {
		t.Fatalf("spinning warp criticality %.0f should exceed progressing warp %.0f",
			c.Criticality(0), c.Criticality(1))
	}
}

func TestCPIAvgZeroIssued(t *testing.T) {
	m := WarpMetrics{}
	if m.CPIAvg() != 1 {
		t.Fatal("CPI of a warp with no instructions should default to 1")
	}
}

func TestPolicyNames(t *testing.T) {
	metrics := make([]WarpMetrics, 1)
	for _, kind := range config.Schedulers {
		p, err := New(kind, []int{0}, metrics, 100)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != string(kind) {
			t.Errorf("policy name %q != kind %q", p.Name(), kind)
		}
	}
}
