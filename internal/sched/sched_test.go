package sched

import (
	"strings"
	"testing"

	"warpsched/internal/config"
)

func readySet(slots ...int) func(int) bool {
	set := map[int]bool{}
	for _, s := range slots {
		set[s] = true
	}
	return func(s int) bool { return set[s] }
}

func TestNewUnknownKind(t *testing.T) {
	_, err := New("BOGUS", []int{0}, nil, Params{})
	if err == nil {
		t.Fatal("unknown scheduler kind must error")
	}
	// The message must enumerate the valid kinds so CLIs can surface it
	// as a usage error.
	for _, kind := range config.AllSchedulers {
		if !strings.Contains(err.Error(), string(kind)) {
			t.Errorf("error %q does not mention valid kind %q", err, kind)
		}
	}
}

func TestLRRRotation(t *testing.T) {
	l := NewLRR([]int{0, 1, 2, 3})
	if got := l.Pick(0, readySet(0, 1, 2, 3)); got != 0 {
		t.Fatalf("first pick = %d, want 0", got)
	}
	l.OnIssue(0, 0)
	if got := l.Pick(1, readySet(0, 1, 2, 3)); got != 1 {
		t.Fatalf("after issuing 0, pick = %d, want 1", got)
	}
	l.OnIssue(1, 1)
	// Slot 2 not ready: skip to 3.
	if got := l.Pick(2, readySet(0, 1, 3)); got != 3 {
		t.Fatalf("pick = %d, want 3", got)
	}
	l.OnIssue(3, 2)
	if got := l.Pick(3, readySet(0)); got != 0 {
		t.Fatalf("wraparound pick = %d, want 0", got)
	}
	if got := l.Pick(4, readySet()); got != -1 {
		t.Fatalf("no ready warps should give -1, got %d", got)
	}
}

func TestGTOGreedyThenOldest(t *testing.T) {
	g := NewGTO([]int{0, 1, 2, 3}, 0)
	if got := g.Pick(0, readySet(1, 2)); got != 1 {
		t.Fatalf("oldest ready = %d, want 1", got)
	}
	g.OnIssue(2, 0)
	// Greedy: last issued (2) preferred while ready, even over older 1.
	if got := g.Pick(1, readySet(1, 2)); got != 2 {
		t.Fatalf("greedy pick = %d, want 2", got)
	}
	// When 2 stalls, fall back to the oldest ready.
	if got := g.Pick(2, readySet(1, 3)); got != 1 {
		t.Fatalf("fallback pick = %d, want 1", got)
	}
}

func TestGTOAgeRotation(t *testing.T) {
	g := NewGTO([]int{0, 1, 2, 3}, 100)
	// In the second rotation period the age order starts from slot 1.
	if got := g.Pick(150, readySet(0, 1, 2, 3)); got != 1 {
		t.Fatalf("rotated oldest = %d, want 1", got)
	}
	if got := g.Pick(250, readySet(0, 1, 2, 3)); got != 2 {
		t.Fatalf("rotated oldest = %d, want 2", got)
	}
	// Rotation wraps around the slot count.
	if got := g.Pick(450, readySet(0, 1, 2, 3)); got != 0 {
		t.Fatalf("wrapped rotation = %d, want 0", got)
	}
}

func TestCAWAPrioritizesCriticalWarp(t *testing.T) {
	metrics := make([]WarpMetrics, 4)
	c := NewCAWA([]int{0, 1, 2, 3}, metrics)
	// Slot 2: many stalls and high CPI — most critical.
	metrics[2] = WarpMetrics{Issued: 10, ResidentCycles: 1000, StallCycles: 900, EstRemaining: 50}
	metrics[1] = WarpMetrics{Issued: 100, ResidentCycles: 200, StallCycles: 50, EstRemaining: 10}
	if got := c.Pick(0, readySet(1, 2)); got != 2 {
		t.Fatalf("CAWA pick = %d, want critical slot 2", got)
	}
	// If 2 is not ready, take the next most critical.
	if got := c.Pick(0, readySet(1, 3)); got != 1 {
		t.Fatalf("CAWA pick = %d, want 1", got)
	}
}

func TestCAWABranchGrowsEstimate(t *testing.T) {
	metrics := make([]WarpMetrics, 2)
	c := NewCAWA([]int{0, 1}, metrics)
	before := metrics[0].EstRemaining
	c.OnBranch(0, true)
	if metrics[0].EstRemaining != before+LoopEstimate {
		t.Fatalf("taken backward branch must add %d to nInst", LoopEstimate)
	}
	c.OnBranch(0, false)
	if metrics[0].EstRemaining != before+LoopEstimate {
		t.Fatal("forward/not-taken branch must not change nInst")
	}
	c.OnIssue(0, 0)
	if metrics[0].EstRemaining != before+LoopEstimate-1 {
		t.Fatal("issue must decrement nInst")
	}
}

func TestCAWASpinningWarpStaysCritical(t *testing.T) {
	// The paper's observation: a spinning warp keeps taking backward
	// branches and stalling, so CAWA keeps prioritizing it.
	metrics := make([]WarpMetrics, 2)
	c := NewCAWA([]int{0, 1}, metrics)
	metrics[0].Resident = true
	metrics[1].Resident = true
	for i := 0; i < 100; i++ {
		// Slot 0 spins: issues, stalls, takes backward branches.
		c.OnIssue(0, int64(i))
		metrics[0].Issued++
		metrics[0].ResidentCycles += 10
		metrics[0].StallCycles += 9
		c.OnBranch(0, true)
		// Slot 1 progresses: issues frequently, no backward branches.
		metrics[1].Issued += 5
		metrics[1].ResidentCycles += 10
		metrics[1].StallCycles++
	}
	if c.Criticality(0) <= c.Criticality(1) {
		t.Fatalf("spinning warp criticality %.0f should exceed progressing warp %.0f",
			c.Criticality(0), c.Criticality(1))
	}
}

func TestCPIAvgZeroIssued(t *testing.T) {
	m := WarpMetrics{}
	if m.CPIAvg() != 1 {
		t.Fatal("CPI of a warp with no instructions should default to 1")
	}
}

func TestPolicyNames(t *testing.T) {
	metrics := make([]WarpMetrics, 1)
	params := Params{GTORotatePeriod: 100, WaSP: config.DefaultWaSP()}
	for _, kind := range config.AllSchedulers {
		p, err := New(kind, []int{0}, metrics, params)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != string(kind) {
			t.Errorf("policy name %q != kind %q", p.Name(), kind)
		}
	}
}

func TestWaSPPriorityGroupFirst(t *testing.T) {
	// Group of 2 starting at slot 0 in phase 0: trailing warps issue
	// only when the whole group is stalled.
	w := NewWaSP([]int{0, 1, 2, 3}, config.WaSP{GroupSize: 2, RotatePeriod: 100})
	if got := w.Pick(0, readySet(0, 1, 2, 3)); got != 0 {
		t.Fatalf("pick = %d, want priority slot 0", got)
	}
	if got := w.Pick(0, readySet(1, 2, 3)); got != 1 {
		t.Fatalf("pick = %d, want priority slot 1", got)
	}
	if got := w.Pick(0, readySet(2, 3)); got != 2 {
		t.Fatalf("pick = %d, want trailing slot 2", got)
	}
	if got := w.Pick(0, readySet()); got != -1 {
		t.Fatalf("no ready warps should give -1, got %d", got)
	}
}

func TestWaSPGreedyWithinGroup(t *testing.T) {
	w := NewWaSP([]int{0, 1, 2, 3}, config.WaSP{GroupSize: 2, RotatePeriod: 100})
	w.OnIssue(1, 0)
	// Greedy: last issued (1) preferred while it stays in the group,
	// even over the lower-index group member 0.
	if got := w.Pick(1, readySet(0, 1)); got != 1 {
		t.Fatalf("greedy pick = %d, want 1", got)
	}
	// A trailing last-issued warp gets no greedy preference: slot 3
	// issued last but slot 0 leads the group.
	w.OnIssue(3, 2)
	if got := w.Pick(3, readySet(0, 3)); got != 0 {
		t.Fatalf("pick = %d, want priority slot 0 over trailing last 3", got)
	}
}

func TestWaSPRotation(t *testing.T) {
	// The window advances by GroupSize slots each period: phase 1 leads
	// with slot 2, phase 2 wraps back to slot 0.
	cases := []struct {
		cycle int64
		ready []int
		want  int
	}{
		{cycle: 0, ready: []int{0, 1, 2, 3}, want: 0},
		{cycle: 100, ready: []int{0, 1, 2, 3}, want: 2},
		{cycle: 150, ready: []int{0, 1, 2}, want: 2},
		{cycle: 150, ready: []int{0, 1}, want: 0}, // trailing order follows the window
		{cycle: 200, ready: []int{0, 1, 2, 3}, want: 0},
		{cycle: 300, ready: []int{1, 3}, want: 3},
	}
	for _, tc := range cases {
		w := NewWaSP([]int{0, 1, 2, 3}, config.WaSP{GroupSize: 2, RotatePeriod: 100})
		if got := w.Pick(tc.cycle, readySet(tc.ready...)); got != tc.want {
			t.Errorf("cycle %d ready %v: pick = %d, want %d", tc.cycle, tc.ready, got, tc.want)
		}
	}
}

func TestWaSPGroupClampedToUnit(t *testing.T) {
	// A unit narrower than the group knob degenerates to greedy over
	// all slots, never an out-of-range scan.
	w := NewWaSP([]int{4, 5}, config.WaSP{GroupSize: 8, RotatePeriod: 50})
	if got := w.Pick(0, readySet(4, 5)); got != 4 {
		t.Fatalf("pick = %d, want 4", got)
	}
	w.OnIssue(5, 0)
	if got := w.Pick(1, readySet(4, 5)); got != 5 {
		t.Fatalf("greedy pick = %d, want 5", got)
	}
	// Rotation stays stable when the group covers the whole unit.
	if got := w.Pick(500, readySet(4)); got != 4 {
		t.Fatalf("pick = %d, want 4", got)
	}
}

func TestWaSPPickCounters(t *testing.T) {
	w := NewWaSP([]int{0, 1, 2, 3}, config.WaSP{GroupSize: 2, RotatePeriod: 100})
	w.Pick(0, readySet(0, 1, 2, 3)) // priority
	w.Pick(0, readySet(3))          // trailing
	if w.priorityPicks != 1 || w.trailingPicks != 1 {
		t.Fatalf("picks = %d/%d, want 1 priority and 1 trailing",
			w.priorityPicks, w.trailingPicks)
	}
}
