package trace

import (
	"strings"
	"testing"

	"warpsched/internal/isa"
)

func TestRingKeepsMostRecent(t *testing.T) {
	r := NewRing(3)
	for i := int64(0); i < 5; i++ {
		r.Record(Event{Cycle: i, Kind: KindIssue})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Cycle != int64(2+i) {
			t.Fatalf("event %d cycle = %d, want %d (chronological, most recent)", i, e.Cycle, 2+i)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(8)
	r.Record(Event{Cycle: 1})
	r.Record(Event{Cycle: 2})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Cycle != 1 || evs[1].Cycle != 2 {
		t.Fatalf("partial ring wrong: %v", evs)
	}
}

func TestRingFilter(t *testing.T) {
	r := NewRing(8)
	r.Filter = Only(KindSIB, KindBackoffExit)
	r.Record(Event{Kind: KindIssue})
	r.Record(Event{Kind: KindSIB})
	r.Record(Event{Kind: KindBarrier})
	r.Record(Event{Kind: KindBackoffExit})
	if got := len(r.Events()); got != 2 {
		t.Fatalf("filtered events = %d, want 2", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 42, SM: 1, Slot: 7, Kind: KindIssue, PC: 14, Op: isa.OpAtomCAS, Lanes: 32}
	s := e.String()
	for _, want := range []string{"42", "sm1", "w07", "atom.cas", "lanes=32"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
	if !strings.Contains(Event{Kind: KindSIB}.String(), "SIB") {
		t.Error("SIB event rendering wrong")
	}
	if !strings.Contains(Event{Kind: KindBackoffExit}.String(), "backed-off") {
		t.Error("backoff-exit rendering wrong")
	}
}

func TestDumpLines(t *testing.T) {
	r := NewRing(4)
	r.Record(Event{Cycle: 1, Kind: KindBarrier})
	r.Record(Event{Cycle: 2, Kind: KindSIB})
	if got := strings.Count(r.Dump(), "\n"); got != 2 {
		t.Fatalf("dump lines = %d", got)
	}
}
