package trace

import (
	"strings"
	"sync"
	"testing"

	"warpsched/internal/isa"
)

func TestRingKeepsMostRecent(t *testing.T) {
	r := NewRing(3)
	for i := int64(0); i < 5; i++ {
		r.Record(Event{Cycle: i, Kind: KindIssue})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Cycle != int64(2+i) {
			t.Fatalf("event %d cycle = %d, want %d (chronological, most recent)", i, e.Cycle, 2+i)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(8)
	r.Record(Event{Cycle: 1})
	r.Record(Event{Cycle: 2})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Cycle != 1 || evs[1].Cycle != 2 {
		t.Fatalf("partial ring wrong: %v", evs)
	}
}

func TestRingFilter(t *testing.T) {
	r := NewRing(8)
	r.Filter = Only(KindSIB, KindBackoffExit)
	r.Record(Event{Kind: KindIssue})
	r.Record(Event{Kind: KindSIB})
	r.Record(Event{Kind: KindBarrier})
	r.Record(Event{Kind: KindBackoffExit})
	if got := len(r.Events()); got != 2 {
		t.Fatalf("filtered events = %d, want 2", got)
	}
}

func TestBuffersPerIndexRings(t *testing.T) {
	b := NewBuffers(4, Only(KindSIB))
	if b.For(2) != b.For(2) {
		t.Fatal("For must return the same ring for the same index")
	}
	if b.For(0) == b.For(1) {
		t.Fatal("distinct indexes must get distinct rings")
	}
	b.For(0).Record(Event{Kind: KindSIB})
	b.For(0).Record(Event{Kind: KindIssue}) // filtered out
	b.For(1).Record(Event{Kind: KindSIB})
	if got := b.Total(); got != 2 {
		t.Fatalf("Total = %d, want 2", got)
	}
	idx := b.Indexes()
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 1 || idx[2] != 2 {
		t.Fatalf("Indexes = %v", idx)
	}
}

// TestBuffersConcurrentFor exercises the usage pattern of the parallel
// experiment runner under the race detector: workers fetch their own
// ring concurrently, then record into it privately.
func TestBuffersConcurrentFor(t *testing.T) {
	b := NewBuffers(16, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := b.For(i)
			for c := int64(0); c < 100; c++ {
				r.Record(Event{Cycle: c, Kind: KindIssue})
			}
		}(i)
	}
	wg.Wait()
	if got := b.Total(); got != 800 {
		t.Fatalf("Total = %d, want 800", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 42, SM: 1, Slot: 7, Kind: KindIssue, PC: 14, Op: isa.OpAtomCAS, Lanes: 32}
	s := e.String()
	for _, want := range []string{"42", "sm1", "w07", "atom.cas", "lanes=32"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
	if !strings.Contains(Event{Kind: KindSIB}.String(), "SIB") {
		t.Error("SIB event rendering wrong")
	}
	if !strings.Contains(Event{Kind: KindBackoffExit}.String(), "backed-off") {
		t.Error("backoff-exit rendering wrong")
	}
}

func TestDumpLines(t *testing.T) {
	r := NewRing(4)
	r.Record(Event{Cycle: 1, Kind: KindBarrier})
	r.Record(Event{Cycle: 2, Kind: KindSIB})
	if got := strings.Count(r.Dump(), "\n"); got != 2 {
		t.Fatalf("dump lines = %d", got)
	}
}
