// Package trace collects per-cycle pipeline events from the simulator for
// debugging and teaching: which warp issued what instruction when, which
// branches triggered BOWS back-off, and when warps were released from the
// backed-off state. The engine invokes a Tracer only when one is
// attached, so tracing costs nothing when off.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"warpsched/internal/isa"
)

// Kind classifies an event.
type Kind uint8

const (
	// KindIssue is an instruction issue.
	KindIssue Kind = iota
	// KindSIB is a taken spin-inducing branch (BOWS trigger).
	KindSIB
	// KindBackoffExit is a warp leaving the backed-off state.
	KindBackoffExit
	// KindBarrier is a warp arriving at a CTA barrier.
	KindBarrier
)

var kindNames = [...]string{
	KindIssue: "issue", KindSIB: "SIB", KindBackoffExit: "unbackoff",
	KindBarrier: "barrier",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// Event is one pipeline occurrence.
type Event struct {
	Cycle int64
	SM    int
	Slot  int
	Kind  Kind
	PC    int32
	Op    isa.Op
	Lanes int
}

// String renders the event on one line.
func (e Event) String() string {
	switch e.Kind {
	case KindIssue:
		return fmt.Sprintf("%8d sm%d w%02d issue %04d %-10s lanes=%d",
			e.Cycle, e.SM, e.Slot, e.PC, e.Op, e.Lanes)
	case KindSIB:
		return fmt.Sprintf("%8d sm%d w%02d SIB   %04d (backed off)", e.Cycle, e.SM, e.Slot, e.PC)
	case KindBackoffExit:
		return fmt.Sprintf("%8d sm%d w%02d exits backed-off state", e.Cycle, e.SM, e.Slot)
	case KindBarrier:
		return fmt.Sprintf("%8d sm%d w%02d at barrier", e.Cycle, e.SM, e.Slot)
	}
	return fmt.Sprintf("%8d sm%d w%02d %s", e.Cycle, e.SM, e.Slot, e.Kind)
}

// Ring is a fixed-capacity event recorder keeping the most recent events.
// It is the standard Tracer implementation; custom tracers can implement
// the sim.Tracer interface directly.
type Ring struct {
	events []Event
	next   int
	full   bool
	total  int64
	// Filter, when non-zero, keeps only events whose Kind bit is set
	// (1<<Kind).
	Filter uint8
}

// NewRing creates a recorder holding the last n events.
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{events: make([]Event, n)}
}

// Record implements the simulator's Tracer interface.
func (r *Ring) Record(e Event) {
	if r.Filter != 0 && r.Filter&(1<<e.Kind) == 0 {
		return
	}
	r.total++
	r.events[r.next] = e
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.full = true
	}
}

// Total returns the number of events recorded (including evicted ones).
func (r *Ring) Total() int64 { return r.total }

// Events returns the retained events in chronological order.
func (r *Ring) Events() []Event {
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Dump renders the retained events, one per line.
func (r *Ring) Dump() string {
	var sb strings.Builder
	for _, e := range r.Events() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Buffers owns one Ring per engine for tracing a parallel sweep. A Ring
// is deliberately unsynchronized (tracing sits on the simulator's issue
// path), so sharing one across concurrently running engines is a data
// race; Buffers instead hands each engine index its own ring, created on
// first use. For itself is safe to call from any goroutine — workers
// fetch their ring as they pick up a run — but each returned Ring must
// stay with its engine.
type Buffers struct {
	size   int
	filter uint8

	mu    sync.Mutex
	rings map[int]*Ring
}

// NewBuffers creates a per-engine recorder set; each ring keeps the last
// n events matching filter (0 keeps every kind, see Only).
func NewBuffers(n int, filter uint8) *Buffers {
	return &Buffers{size: n, filter: filter, rings: make(map[int]*Ring)}
}

// For returns engine index i's ring, creating it on first use.
func (b *Buffers) For(i int) *Ring {
	b.mu.Lock()
	defer b.mu.Unlock()
	r := b.rings[i]
	if r == nil {
		r = NewRing(b.size)
		r.Filter = b.filter
		b.rings[i] = r
	}
	return r
}

// Indexes returns the engine indexes with a ring, ascending.
func (b *Buffers) Indexes() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]int, 0, len(b.rings))
	for i := range b.rings {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Total sums recorded events (including evicted ones) across all rings.
func (b *Buffers) Total() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var n int64
	for _, r := range b.rings {
		n += r.Total()
	}
	return n
}

// Only returns a filter mask keeping the listed kinds.
func Only(kinds ...Kind) uint8 {
	var m uint8
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}
