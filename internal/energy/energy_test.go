package energy

import (
	"testing"

	"warpsched/internal/stats"
)

func TestComputeMonotonicInEvents(t *testing.T) {
	c := Fermi()
	base := stats.Sim{WarpInstrs: 100, ThreadInstrs: 1000}
	more := base
	more.Mem.DRAMAccesses = 50
	e0 := Compute(c, &base).Total()
	e1 := Compute(c, &more).Total()
	if e1 <= e0 {
		t.Fatalf("more DRAM accesses must cost more energy: %f vs %f", e1, e0)
	}
}

func TestComputeZero(t *testing.T) {
	var s stats.Sim
	if got := Compute(Fermi(), &s).Total(); got != 0 {
		t.Fatalf("zero activity should cost zero dynamic energy, got %f", got)
	}
}

func TestBreakdownTotalIsSum(t *testing.T) {
	b := Breakdown{Core: 1, L1: 2, L2: 3, DRAM: 4, Atomic: 5, Idle: 6, Sched: 7}
	if b.Total() != 28 {
		t.Fatalf("Total = %f", b.Total())
	}
}

func TestPascalCheaperPerEvent(t *testing.T) {
	f, p := Fermi(), Pascal()
	if p.IssuePJ >= f.IssuePJ || p.DRAMPJ >= f.DRAMPJ || p.L2PJ >= f.L2PJ {
		t.Fatal("16nm Pascal events must cost less than 40nm Fermi events")
	}
}

func TestByConfigName(t *testing.T) {
	if ByConfigName("GTX1080Ti") != Pascal() {
		t.Fatal("GTX1080Ti should map to Pascal coefficients")
	}
	if ByConfigName("GTX1080Ti/7SM") != Pascal() {
		t.Fatal("scaled Pascal names should map to Pascal coefficients")
	}
	if ByConfigName("GTX480") != Fermi() {
		t.Fatal("GTX480 should map to Fermi coefficients")
	}
	if ByConfigName("GTX480/4SM") != Fermi() {
		t.Fatal("scaled Fermi names should map to Fermi coefficients")
	}
}

func TestDRAMDominatesForMemoryBound(t *testing.T) {
	c := Fermi()
	s := stats.Sim{WarpInstrs: 10, ThreadInstrs: 100}
	s.Mem.DRAMAccesses = 1000
	b := Compute(c, &s)
	if b.DRAM <= b.Core {
		t.Fatal("heavy DRAM traffic should dominate the energy breakdown")
	}
}

func TestStringRendersNanojoules(t *testing.T) {
	b := Breakdown{Core: 1e3}
	if got := b.String(); len(got) == 0 {
		t.Fatal("empty String()")
	}
}
