// Package energy is an event-based dynamic energy model standing in for
// GPUWattch: each architectural event (instruction issue, lane ALU
// operation, register file access, cache/DRAM transaction, atomic
// operation) is charged a per-event energy, and idle resident cycles are
// charged a small constant. The paper reports *normalized* dynamic energy
// (Figures 9b and 15b), so only the relative weights matter; coefficients
// are order-of-magnitude values from the GPUWattch/McPAT literature.
package energy

import (
	"fmt"

	"warpsched/internal/metrics"
	"warpsched/internal/stats"
)

// Coefficients are per-event energies in picojoules.
type Coefficients struct {
	IssuePJ     float64 // per issued warp instruction (fetch/decode/issue)
	LaneOpPJ    float64 // per active-lane executed operation
	RFAccessPJ  float64 // per active-lane register file access (avg reads+write)
	L1PJ        float64 // per L1 transaction
	L2PJ        float64 // per L2 transaction
	DRAMPJ      float64 // per DRAM transaction
	AtomicPJ    float64 // additional per atomic transaction (RMW at L2)
	IdleWarpPJ  float64 // per resident-warp stall cycle (clock/pipeline overhead)
	SchedulerPJ float64 // per scheduler arbitration cycle
}

// Fermi returns coefficients tuned for the GTX480-class model.
func Fermi() Coefficients {
	return Coefficients{
		IssuePJ:     40,
		LaneOpPJ:    10,
		RFAccessPJ:  6,
		L1PJ:        80,
		L2PJ:        250,
		DRAMPJ:      2000,
		AtomicPJ:    150,
		IdleWarpPJ:  1.5,
		SchedulerPJ: 8,
	}
}

// Pascal returns coefficients for the GTX1080Ti-class model (16 nm:
// lower per-event energy, same ratios to first order).
func Pascal() Coefficients {
	c := Fermi()
	c.IssuePJ *= 0.55
	c.LaneOpPJ *= 0.55
	c.RFAccessPJ *= 0.55
	c.L1PJ *= 0.6
	c.L2PJ *= 0.6
	c.DRAMPJ *= 0.7
	c.AtomicPJ *= 0.6
	c.IdleWarpPJ *= 0.5
	c.SchedulerPJ *= 0.55
	return c
}

// ByConfigName returns the coefficient set for a GPU config name.
func ByConfigName(name string) Coefficients {
	if len(name) >= 7 && name[:7] == "GTX1080" {
		return Pascal()
	}
	return Fermi()
}

// Breakdown is the modeled dynamic energy split by component, in
// picojoules.
type Breakdown struct {
	Core   float64 // issue + lane ops + RF
	L1     float64
	L2     float64
	DRAM   float64
	Atomic float64
	Idle   float64
	Sched  float64
}

// Total returns the summed dynamic energy.
func (b Breakdown) Total() float64 {
	return b.Core + b.L1 + b.L2 + b.DRAM + b.Atomic + b.Idle + b.Sched
}

// NormalizedTo returns this breakdown's total as a fraction of base's
// total — the quantity Figures 9b and 15b plot (dynamic energy normalized
// to the LRR baseline). Returns 0 when base is empty.
func (b Breakdown) NormalizedTo(base Breakdown) float64 {
	t := base.Total()
	if t == 0 {
		return 0
	}
	return b.Total() / t
}

// String renders the breakdown in nanojoules.
func (b Breakdown) String() string {
	return fmt.Sprintf("total=%.1fnJ core=%.1f l1=%.1f l2=%.1f dram=%.1f atomic=%.1f idle=%.1f sched=%.1f",
		b.Total()/1e3, b.Core/1e3, b.L1/1e3, b.L2/1e3, b.DRAM/1e3, b.Atomic/1e3, b.Idle/1e3, b.Sched/1e3)
}

// Register exposes the modeled energy breakdown as registry gauges under
// prefix (e.g. "energy."). Each gauge recomputes the breakdown from the
// live stats at snapshot time, so registration adds nothing to the
// simulation's per-cycle cost.
func Register(r *metrics.Registry, prefix string, c Coefficients, s *stats.Sim) {
	part := func(name string, f func(*Breakdown) float64) {
		r.Gauge(prefix+name, func() float64 {
			b := Compute(c, s)
			return f(&b)
		})
	}
	part("total_pj", func(b *Breakdown) float64 { return b.Total() })
	part("core_pj", func(b *Breakdown) float64 { return b.Core })
	part("l1_pj", func(b *Breakdown) float64 { return b.L1 })
	part("l2_pj", func(b *Breakdown) float64 { return b.L2 })
	part("dram_pj", func(b *Breakdown) float64 { return b.DRAM })
	part("atomic_pj", func(b *Breakdown) float64 { return b.Atomic })
	part("idle_pj", func(b *Breakdown) float64 { return b.Idle })
	part("sched_pj", func(b *Breakdown) float64 { return b.Sched })
}

// Compute charges the coefficient set against the run's event counts.
func Compute(c Coefficients, s *stats.Sim) Breakdown {
	var b Breakdown
	// ~3 RF accesses per lane op (2 reads + 1 write on average).
	b.Core = c.IssuePJ*float64(s.WarpInstrs) +
		c.LaneOpPJ*float64(s.ThreadInstrs) +
		3*c.RFAccessPJ*float64(s.ThreadInstrs)
	b.L1 = c.L1PJ * float64(s.Mem.L1Accesses)
	b.L2 = c.L2PJ * float64(s.Mem.L2Accesses)
	b.DRAM = c.DRAMPJ * float64(s.Mem.DRAMAccesses)
	b.Atomic = c.AtomicPJ * float64(s.Mem.AtomicOps)
	b.Idle = c.IdleWarpPJ * float64(s.StallTotal)
	b.Sched = c.SchedulerPJ * float64(s.IssueCycles+s.IdleCycles)
	return b
}
