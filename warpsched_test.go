package warpsched

import (
	"fmt"
	"strings"
	"testing"
)

func quickOpt() Options {
	opt := DefaultOptions()
	opt.GPU = GTX480().Scaled(2)
	return opt
}

func TestPublicAPIRoundTrip(t *testing.T) {
	k, err := Kernel("HT")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(quickOpt(), k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles <= 0 {
		t.Fatal("no cycles simulated")
	}
	e := Energy(quickOpt(), res)
	if e.Total() <= 0 {
		t.Fatal("no energy modeled")
	}
}

func TestKernelRegistry(t *testing.T) {
	names := KernelNames()
	if len(names) != len(SyncSuite())+len(SyncFreeSuite()) {
		t.Fatalf("registry size %d", len(names))
	}
	for _, want := range []string{"TB", "ST", "DS", "ATM", "HT", "TSP", "NW1", "NW2",
		"KMEANS", "VECADD", "REDUCE", "MS", "HL", "STENCIL"} {
		if _, err := Kernel(want); err != nil {
			t.Errorf("kernel %q missing: %v", want, err)
		}
	}
	if _, err := Kernel("nope"); err == nil || !strings.Contains(err.Error(), "unknown kernel") {
		t.Errorf("unknown kernel error = %v", err)
	}
}

func TestConfigsExposed(t *testing.T) {
	if GTX480().Name != "GTX480" || GTX1080Ti().Name != "GTX1080Ti" {
		t.Fatal("config constructors wrong")
	}
	if DefaultBOWS().Mode != BOWSDDOS {
		t.Fatal("DefaultBOWS should be DDOS-driven")
	}
	if FixedBOWS(500).DelayLimit != 500 {
		t.Fatal("FixedBOWS wrong")
	}
	if DefaultDDOS().HistoryLen != 8 {
		t.Fatal("DefaultDDOS wrong")
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	k, _ := Kernel("VECADD")
	opt := quickOpt()
	opt.GPU.NumSMs = 0
	if _, err := Run(opt, k); err == nil {
		t.Fatal("invalid GPU config must fail")
	}
	opt = quickOpt()
	opt.Sched = "BOGUS"
	if _, err := Run(opt, k); err == nil {
		t.Fatal("unknown scheduler must fail")
	}
}

func TestBOWSImprovesContendedHashtable(t *testing.T) {
	// The headline qualitative claim: under contention, BOWS reduces
	// dynamic instructions and failed acquires versus the GTO baseline.
	k, err := Kernel("HT")
	if err != nil {
		t.Fatal(err)
	}
	opt := quickOpt()
	opt.Sched = GTO
	base, err := Run(opt, k)
	if err != nil {
		t.Fatal(err)
	}
	opt.BOWS = DefaultBOWS()
	bows, err := Run(opt, k)
	if err != nil {
		t.Fatal(err)
	}
	if bows.Stats.ThreadInstrs >= base.Stats.ThreadInstrs {
		t.Errorf("BOWS should cut dynamic instructions: %d vs %d",
			bows.Stats.ThreadInstrs, base.Stats.ThreadInstrs)
	}
	bf := bows.Stats.Sync.InterWarpFail + bows.Stats.Sync.IntraWarpFail
	gf := base.Stats.Sync.InterWarpFail + base.Stats.Sync.IntraWarpFail
	if bf >= gf {
		t.Errorf("BOWS should cut failed acquires: %d vs %d", bf, gf)
	}
	if len(bows.ConfirmedSIBs) == 0 {
		t.Error("DDOS should confirm the HT spin branch")
	}
}

func TestParseProgramEndToEnd(t *testing.T) {
	prog, err := ParseProgram("incr", `
  ld.param %r10, 0
  mov %r1, %gtid
  mov %r6, 0
top:
  atom.cas %r7, [%r10+0], 0, 1  !acquire,sync
  setp.eq %p1, %r7, 0           !sync
  @!%p1 bra again reconv=again
  ld.volatile %r8, [%r10+32]
  add %r8, %r8, 1
  st.global [%r10+32], %r8
  mov %r6, 1
  membar                        !sync
  atom.exch %r9, [%r10+0], 0    !release,sync
again:
  setp.eq %p2, %r6, 0           !sync
  @%p2 bra top                  !sib,sync
  exit
`)
	if err != nil {
		t.Fatal(err)
	}
	const threads = 256
	bench := NewBenchmark("incr", "locked counter", Launch{
		Prog: prog, GridCTAs: threads / 64, CTAThreads: 64,
		Params: []uint32{0}, MemWords: 128,
	}, func(w []uint32) error {
		if w[32] != threads {
			return fmt.Errorf("counter = %d, want %d", w[32], threads)
		}
		return nil
	})
	opt := quickOpt()
	opt.BOWS = DefaultBOWS()
	res, err := Run(opt, bench)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detection.TSDR() != 1 {
		t.Errorf("parsed SIB not detected: TSDR=%.2f", res.Detection.TSDR())
	}
}
