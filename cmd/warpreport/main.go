// Command warpreport renders the reproduction report from run manifests.
//
// It is strictly offline: it consumes the -stats-json manifests written
// by cmd/experiments (several may be joined, e.g. per-experiment shards
// of the same scale) and derives REPRODUCTION.md plus the SVG figures.
// Output is byte-identical for the same inputs on every run and
// platform, which makes -check a plain byte comparison:
//
//	# regenerate the published report from the checked-in manifest
//	go run ./cmd/warpreport -manifest internal/report/testdata/full.json \
//	    -md REPRODUCTION.md -svg-dir docs/figures
//
//	# verify nothing drifted (CI docs gate); exits 1 and lists stale files
//	go run ./cmd/warpreport -manifest internal/report/testdata/full.json \
//	    -md REPRODUCTION.md -svg-dir docs/figures -check
package main

import (
	"flag"
	"fmt"
	"os"

	"warpsched/internal/report"
)

type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var manifests multiFlag
	flag.Var(&manifests, "manifest", "run manifest JSON (repeatable; manifests are joined)")
	md := flag.String("md", "REPRODUCTION.md", "output Markdown document path")
	svgDir := flag.String("svg-dir", "docs/figures", "output directory for SVG figures")
	check := flag.Bool("check", false, "verify outputs match instead of writing (exit 1 on drift)")
	flag.Parse()

	if len(manifests) == 0 {
		fmt.Fprintln(os.Stderr, "warpreport: at least one -manifest is required")
		flag.Usage()
		os.Exit(2)
	}
	set, err := report.Load(manifests...)
	if err != nil {
		fatal(err)
	}
	rep, err := report.Build(set.Manifest())
	if err != nil {
		fatal(err)
	}
	if *check {
		if err := rep.Check(*md, *svgDir); err != nil {
			fatal(err)
		}
		fmt.Printf("warpreport: %s and %s match the manifest\n", *md, *svgDir)
		return
	}
	paths, err := rep.Write(*md, *svgDir)
	if err != nil {
		fatal(err)
	}
	for _, p := range paths {
		fmt.Printf("warpreport: wrote %s\n", p)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "warpreport: %v\n", err)
	os.Exit(1)
}
