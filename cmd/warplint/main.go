// Command warplint runs the internal/analysis static analyzer over kernel
// programs: the registered benchmark suites, a single registered kernel,
// or assembly text files in the syntax of isa.Parse.
//
// Usage:
//
//	warplint -all                 # analyze every registered kernel (full + quick suites)
//	warplint -kernel HT           # one registered kernel by name
//	warplint prog.s other.s       # parse and analyze text programs
//	warplint -all -json           # machine-readable findings
//	warplint -all -v              # also list clean programs and suppressions
//
// The exit status is 0 when every analyzed program is clean (suppressed
// findings do not fail the run), 1 when any finding is reported, and 2 on
// usage or parse errors. Findings can be suppressed per instruction with
// the `!nolint` annotation (isa.AnnNoLint); suppressions are visible with
// -v and in the JSON output, never silent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"warpsched/internal/analysis"
	"warpsched/internal/isa"
	"warpsched/internal/kernels"
)

func main() {
	var (
		all     = flag.Bool("all", false, "analyze every registered kernel (full and quick suites)")
		kernel  = flag.String("kernel", "", "analyze one registered kernel by name")
		jsonOut = flag.Bool("json", false, "emit findings as JSON")
		verbose = flag.Bool("v", false, "list clean programs and suppressed findings")
	)
	flag.Parse()

	type target struct {
		label string
		prog  *isa.Program
	}
	var targets []target

	switch {
	case *all:
		for _, s := range []struct {
			tag   string
			suite []*kernels.Kernel
		}{
			{"", kernels.SyncSuite()},
			{"", kernels.SyncFreeSuite()},
			{" (quick)", kernels.QuickSyncSuite()},
			{" (quick)", kernels.QuickSyncFreeSuite()},
		} {
			for _, k := range s.suite {
				targets = append(targets, target{k.Name + s.tag, k.Launch.Prog})
			}
		}
	case *kernel != "":
		k, err := kernels.ByName(*kernel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "warplint:", err)
			os.Exit(2)
		}
		targets = append(targets, target{k.Name, k.Launch.Prog})
	case flag.NArg() > 0:
		for _, path := range flag.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "warplint:", err)
				os.Exit(2)
			}
			p, err := isa.Parse(path, string(src))
			if err != nil {
				fmt.Fprintln(os.Stderr, "warplint:", err)
				os.Exit(2)
			}
			targets = append(targets, target{path, p})
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	var reports []*analysis.Report
	failed := false
	for _, t := range targets {
		rep := analysis.Analyze(t.prog)
		reports = append(reports, rep)
		if !rep.Clean() {
			failed = true
		}
		if *jsonOut {
			continue
		}
		for _, f := range rep.Findings {
			fmt.Printf("%s:%d: [%s] %s\n", t.label, f.PC, f.Category, f.Message)
			if f.PC >= 0 && f.PC < t.prog.Len() {
				fmt.Printf("    %04d: %s\n", f.PC, isa.Disasm(t.prog.At(f.PC)))
			}
		}
		if *verbose {
			for _, f := range rep.Suppressed {
				fmt.Printf("%s:%d: suppressed [%s] %s\n", t.label, f.PC, f.Category, f.Message)
			}
			if rep.Clean() {
				fmt.Printf("%s: ok (%d instructions, %d suppressed)\n",
					t.label, t.prog.Len(), len(rep.Suppressed))
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(os.Stderr, "warplint:", err)
			os.Exit(2)
		}
	}
	if failed {
		os.Exit(1)
	}
}
