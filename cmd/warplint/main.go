// Command warplint runs the internal/analysis static analyzer over kernel
// programs: the registered benchmark suites, a single registered kernel,
// or assembly text files in the syntax of isa.Parse.
//
// Usage:
//
//	warplint -all                 # analyze every registered kernel (full + quick suites)
//	warplint -kernel HT           # one registered kernel by name
//	warplint prog.s other.s       # parse and analyze text programs
//	warplint -all -json           # machine-readable findings (schema 2)
//	warplint -all -v              # also list clean programs and suppressions
//	warplint -race=false prog.s   # intra-warp passes only
//
// Beyond the structural and dataflow passes, warplint runs the inter-warp
// race analyzer (internal/analysis/race) by default: data races between
// barriers, divergent barrier phasing, and lockset/lock-order defects.
// Registered kernels are analyzed at their launch geometry; text programs
// use -ctas/-threads.
//
// The exit status is 0 when every analyzed program is clean (suppressed
// findings do not fail the run), 1 when any finding is reported, and 2 on
// usage or parse errors. Findings can be suppressed per instruction with
// the `!nolint` annotation (isa.AnnNoLint), optionally scoped to classes
// or categories (`!nolint race,lockorder`); suppressions are visible with
// -v and in the JSON output, never silent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"warpsched/internal/analysis"
	"warpsched/internal/analysis/race"
	"warpsched/internal/isa"
	"warpsched/internal/kernels"
)

// jsonOutput is the machine-readable envelope. Schema 2 added the top-
// level schema/reports wrapper, the per-finding `class` field and the
// inter-warp race categories; schema 1 was a bare report array.
type jsonOutput struct {
	Schema  int                `json:"schema"`
	Reports []*analysis.Report `json:"reports"`
}

const jsonSchema = 2

func main() {
	var (
		all      = flag.Bool("all", false, "analyze every registered kernel (full and quick suites)")
		kernel   = flag.String("kernel", "", "analyze one registered kernel by name")
		jsonOut  = flag.Bool("json", false, "emit findings as JSON (schema 2)")
		verbose  = flag.Bool("v", false, "list clean programs and suppressed findings")
		withRace = flag.Bool("race", true, "run the inter-warp race/lock/barrier analyzer")
		ctas     = flag.Int("ctas", 0, "launch geometry for text programs: grid CTAs (0 = analyzer default)")
		threads  = flag.Int("threads", 0, "launch geometry for text programs: threads per CTA (0 = analyzer default)")
	)
	flag.Parse()

	type target struct {
		label         string
		prog          *isa.Program
		ctas, threads int32
	}
	var targets []target

	switch {
	case *all:
		for _, s := range []struct {
			tag   string
			suite []*kernels.Kernel
		}{
			{"", kernels.SyncSuite()},
			{"", kernels.SyncFreeSuite()},
			{" (quick)", kernels.QuickSyncSuite()},
			{" (quick)", kernels.QuickSyncFreeSuite()},
		} {
			for _, k := range s.suite {
				targets = append(targets, target{k.Name + s.tag, k.Launch.Prog,
					int32(k.Launch.GridCTAs), int32(k.Launch.CTAThreads)})
			}
		}
	case *kernel != "":
		k, err := kernels.ByName(*kernel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "warplint:", err)
			os.Exit(2)
		}
		targets = append(targets, target{k.Name, k.Launch.Prog,
			int32(k.Launch.GridCTAs), int32(k.Launch.CTAThreads)})
	case flag.NArg() > 0:
		for _, path := range flag.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "warplint:", err)
				os.Exit(2)
			}
			p, err := isa.Parse(path, string(src))
			if err != nil {
				fmt.Fprintln(os.Stderr, "warplint:", err)
				os.Exit(2)
			}
			targets = append(targets, target{path, p, int32(*ctas), int32(*threads)})
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	var reports []*analysis.Report
	failed := false
	for _, t := range targets {
		rep := analysis.Analyze(t.prog)
		if *withRace {
			rrep := race.Analyze(t.prog, race.Options{
				GridCTAs: t.ctas, CTAThreads: t.threads,
			}).Report
			mergeReports(rep, rrep)
		}
		reports = append(reports, rep)
		if !rep.Clean() {
			failed = true
		}
		if *jsonOut {
			continue
		}
		for _, f := range rep.Findings {
			fmt.Printf("%s:%d: [%s] %s\n", t.label, f.PC, f.Category, f.Message)
			if f.PC >= 0 && f.PC < t.prog.Len() {
				fmt.Printf("    %04d: %s\n", f.PC, isa.Disasm(t.prog.At(f.PC)))
			}
		}
		if *verbose {
			for _, f := range rep.Suppressed {
				fmt.Printf("%s:%d: suppressed [%s] %s\n", t.label, f.PC, f.Category, f.Message)
			}
			if rep.Clean() {
				fmt.Printf("%s: ok (%d instructions, %d suppressed)\n",
					t.label, t.prog.Len(), len(rep.Suppressed))
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOutput{Schema: jsonSchema, Reports: reports}); err != nil {
			fmt.Fprintln(os.Stderr, "warplint:", err)
			os.Exit(2)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// mergeReports folds the race analyzer's report into the core one,
// keeping findings sorted by PC then category. A structurally invalid
// program makes both passes emit the same CatInvalid finding; the
// duplicate is dropped.
func mergeReports(dst, src *analysis.Report) {
	add := func(to []analysis.Finding, fs []analysis.Finding) []analysis.Finding {
		for _, f := range fs {
			if f.Category == analysis.CatInvalid && hasCat(to, analysis.CatInvalid) {
				continue
			}
			to = append(to, f)
		}
		sort.Slice(to, func(i, j int) bool {
			if to[i].PC != to[j].PC {
				return to[i].PC < to[j].PC
			}
			return to[i].Category < to[j].Category
		})
		return to
	}
	dst.Findings = add(dst.Findings, src.Findings)
	dst.Suppressed = add(dst.Suppressed, src.Suppressed)
}

func hasCat(fs []analysis.Finding, c analysis.Category) bool {
	for _, f := range fs {
		if f.Category == c {
			return true
		}
	}
	return false
}
