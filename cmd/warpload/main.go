// Command warpload load-tests a warpsimd daemon: N concurrent clients
// drive a fixed job mix (default: the golden 32-run quick sync matrix —
// 8 kernels × GTO/CAWA × ±BOWS) through POST /v1/jobs and report
// latency percentiles, throughput and cache hit rate. With no -addr it
// spins up an in-process server on a loopback port, so one command
// exercises the full stack.
//
//	warpload -clients 1000 -requests 8000
//	warpload -addr http://localhost:8723 -clients 256 -requests 4096
//
// -verify re-runs every distinct job in the mix directly on the engine
// and diffs cycles and the full counter snapshot against the daemon's
// cached manifests — the zero-divergence check that the service layer
// returns exactly what cmd/warpsim would have computed.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"warpsched/internal/exp"
	"warpsched/internal/metrics"
	"warpsched/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "", "daemon base URL (empty = start an in-process server)")
		clients  = flag.Int("clients", 64, "concurrent clients")
		requests = flag.Int("requests", 2048, "total requests across all clients")
		warmup   = flag.Bool("warmup", true, "submit each distinct job once before the timed phase")
		verify   = flag.Bool("verify", false, "re-run the mix directly on the engine and diff against cached manifests")
		workers  = flag.Int("workers", 0, "in-process server worker pool size (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 64, "in-process server queue depth")
	)
	flag.Parse()

	mix := jobMix()
	opt := server.Options{Workers: *workers, QueueDepth: *queue}

	base := *addr
	var drain func()
	if base == "" {
		var err error
		base, drain, err = startLocal(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("in-process server at %s\n", base)
	}

	client := &http.Client{Timeout: 10 * time.Minute,
		Transport: &http.Transport{MaxIdleConnsPerHost: *clients}}

	if *warmup {
		fmt.Printf("warmup: %d distinct jobs...\n", len(mix))
		start := time.Now()
		var wg sync.WaitGroup
		for i := range mix {
			wg.Add(1)
			go func(r *server.JobRequest) {
				defer wg.Done()
				if _, _, err := submit(client, base, r); err != nil {
					fmt.Fprintf(os.Stderr, "warmup: %v\n", err)
				}
			}(&mix[i])
		}
		wg.Wait()
		fmt.Printf("warmup done in %.1fs\n", time.Since(start).Seconds())
	}

	fmt.Printf("load: %d clients, %d requests over a %d-job mix\n", *clients, *requests, len(mix))
	lats := make([]time.Duration, *requests)
	cachedCount := make([]int32, 1)
	var errCount atomic.Int32
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *requests {
					return
				}
				t0 := time.Now()
				_, cached, err := submit(client, base, &mix[i%len(mix)])
				lats[i] = time.Since(t0)
				if err != nil {
					errCount.Add(1)
					continue
				}
				if cached {
					atomic.AddInt32(&cachedCount[0], 1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration { return lats[min(len(lats)-1, int(q*float64(len(lats))))] }
	ok := *requests - int(errCount.Load())
	fmt.Printf("\n%d requests in %.2fs (%.0f req/s), %d errors\n",
		*requests, wall.Seconds(), float64(*requests)/wall.Seconds(), errCount.Load())
	fmt.Printf("latency  p50 %s  p90 %s  p99 %s  p99.9 %s  max %s\n",
		pct(0.50), pct(0.90), pct(0.99), pct(0.999), lats[len(lats)-1])
	if ok > 0 {
		fmt.Printf("cache    %d/%d responses cached (%.1f%% hit rate)\n",
			cachedCount[0], ok, 100*float64(cachedCount[0])/float64(ok))
	}
	dumpStats(client, base)

	divergent := 0
	if *verify {
		divergent = verifyMix(client, base, opt, mix)
	}
	if drain != nil {
		drain()
	}
	if errCount.Load() > 0 || divergent > 0 {
		os.Exit(1)
	}
}

// jobMix is the golden 32-run matrix: the quick sync suite under
// GTO/CAWA with BOWS off and on, on the 2-SM Fermi — the same runs the
// golden-stats gate pins, so results are independently known-good.
func jobMix() []server.JobRequest {
	kernels := []string{"TB", "ST", "DS", "ATM", "HT", "TSP", "NW1", "NW2"}
	var mix []server.JobRequest
	for _, k := range kernels {
		for _, sched := range []string{"GTO", "CAWA"} {
			for _, bows := range []string{"off", "ddos"} {
				mix = append(mix, server.JobRequest{Kernel: k, Wait: true,
					Config: server.JobConfig{SMs: 2, Quick: true, Sched: sched, BOWS: bows}})
			}
		}
	}
	return mix
}

// startLocal runs an in-process daemon on a loopback port and returns
// its base URL and a drain func.
func startLocal(opt server.Options) (string, func(), error) {
	s, err := server.New(opt)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)
	drain := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		defer cancel()
		httpSrv.Shutdown(ctx)
		s.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), drain, nil
}

// submit POSTs one synchronous job and returns its result key and
// whether the response was served from cache.
func submit(client *http.Client, base string, req *server.JobRequest) (key string, cached bool, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", false, err
	}
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", false, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", false, err
	}
	if resp.StatusCode != http.StatusOK {
		return "", false, fmt.Errorf("POST /v1/jobs: %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	var st server.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return "", false, err
	}
	if st.Err != "" {
		return st.Key, st.Cached, fmt.Errorf("job %s failed: %s", st.ID, st.Err)
	}
	return st.Key, st.Cached, nil
}

// dumpStats prints the daemon's own view (GET /v1/stats).
func dumpStats(client *http.Client, base string) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		fmt.Fprintf(os.Stderr, "stats: %v\n", err)
		return
	}
	defer resp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		fmt.Fprintf(os.Stderr, "stats: %v\n", err)
		return
	}
	fmt.Printf("server   engine runs %d, deduped %d, cache %d/%d hits (%.1f%%), evictions %d, latency p50 %dµs p99 %dµs\n",
		st.Jobs.EngineRuns, st.Jobs.Deduped, st.Cache.Hits, st.Cache.Hits+st.Cache.Misses,
		100*st.Cache.HitRate, st.Cache.Evictions, st.LatencyUS.P50, st.LatencyUS.P99)
}

// verifyMix re-runs every distinct job directly on the engine (same
// resolution path the daemon admits with) and compares cycles and the
// full counter snapshot against the cached manifest. Returns the number
// of divergent jobs (zero is the acceptance bar: the service must be a
// transparent cache over the deterministic engine).
func verifyMix(client *http.Client, base string, opt server.Options, mix []server.JobRequest) int {
	fmt.Printf("\nverify: re-running %d jobs directly on the engine...\n", len(mix))
	divergent := 0
	for i := range mix {
		req := mix[i]
		spec, rerr := opt.Resolve(&req)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "verify: resolve: %v\n", rerr)
			divergent++
			continue
		}
		key, _, err := submit(client, base, &req)
		if err != nil {
			fmt.Fprintf(os.Stderr, "verify: %v\n", err)
			divergent++
			continue
		}
		resp, err := client.Get(base + "/v1/results/" + key)
		if err != nil {
			fmt.Fprintf(os.Stderr, "verify: fetch result: %v\n", err)
			divergent++
			continue
		}
		var m metrics.Manifest
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil || len(m.Runs) != 1 {
			fmt.Fprintf(os.Stderr, "verify: manifest for %s: %v (%d runs)\n", key, err, len(m.Runs))
			divergent++
			continue
		}
		out := exp.Cfg{Jobs: 1}.Execute([]exp.Spec{spec})[0]
		if out.Err != nil {
			fmt.Fprintf(os.Stderr, "verify: direct run %s: %v\n", req.Kernel, out.Err)
			divergent++
			continue
		}
		rec := m.Runs[0]
		switch {
		case out.Res.Stats.Cycles != rec.Cycles:
			fmt.Fprintf(os.Stderr, "verify: %s %s: cycles %d (direct) != %d (cached)\n",
				req.Kernel, rec.Variant, out.Res.Stats.Cycles, rec.Cycles)
			divergent++
		case !reflect.DeepEqual(out.Res.Metrics.Counters, rec.Counters):
			fmt.Fprintf(os.Stderr, "verify: %s %s: counter snapshots differ\n", req.Kernel, rec.Variant)
			divergent++
		}
	}
	if divergent == 0 {
		fmt.Printf("verify: zero divergence across %d jobs\n", len(mix))
	} else {
		fmt.Fprintf(os.Stderr, "verify: %d/%d jobs diverged\n", divergent, len(mix))
	}
	return divergent
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "warpload:", err)
	os.Exit(1)
}
