// Command warpload load-tests a warpsimd daemon: N concurrent clients
// drive a fixed job mix (default: the golden 32-run quick sync matrix —
// 8 kernels × GTO/CAWA × ±BOWS) through POST /v1/jobs and report
// latency percentiles, throughput and cache hit rate. With no -addr it
// spins up an in-process server on a loopback port, so one command
// exercises the full stack.
//
//	warpload -clients 1000 -requests 8000
//	warpload -addr http://localhost:8723 -clients 256 -requests 4096
//
// Submissions go through the hardened client (internal/server.Client):
// shed responses (429/503 + Retry-After) and transport faults are
// retried with capped jittered backoff (-retries attempts per call), and
// -hedge arms hedged result reads. Requests that still fail after every
// retry are counted, classified and dumped as a JSON error summary on
// stderr, and the process exits non-zero — so CI can assert both the
// happy path and the failure contract.
//
// -verify re-runs every distinct job in the mix directly on the engine
// and diffs cycles and the full counter snapshot against the daemon's
// cached manifests — the zero-divergence check that the service layer
// returns exactly what cmd/warpsim would have computed.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"reflect"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"warpsched/internal/exp"
	"warpsched/internal/metrics"
	"warpsched/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "", "daemon base URL (empty = start an in-process server)")
		clients  = flag.Int("clients", 64, "concurrent clients")
		requests = flag.Int("requests", 2048, "total requests across all clients")
		warmup   = flag.Bool("warmup", true, "submit each distinct job once before the timed phase")
		verify   = flag.Bool("verify", false, "re-run the mix directly on the engine and diff against cached manifests")
		workers  = flag.Int("workers", 0, "in-process server worker pool size (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 64, "in-process server queue depth")
		retries  = flag.Int("retries", 5, "attempts per request (shed and transport failures back off and retry)")
		hedge    = flag.Duration("hedge", 0, "hedge result reads after this delay (0 = off), e.g. 50ms")
	)
	flag.Parse()

	mix := jobMix()
	opt := server.Options{Workers: *workers, QueueDepth: *queue}

	base := *addr
	var drain func()
	if base == "" {
		var err error
		base, drain, err = startLocal(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("in-process server at %s\n", base)
	}

	cli := server.NewClient(base, server.ClientOptions{
		HTTP: &http.Client{Timeout: 10 * time.Minute,
			Transport: &http.Transport{MaxIdleConnsPerHost: *clients}},
		MaxAttempts: *retries,
		Hedge:       *hedge,
	})
	rec := &errorRecorder{byClass: map[string]int{}}

	if *warmup {
		fmt.Printf("warmup: %d distinct jobs...\n", len(mix))
		start := time.Now()
		var wg sync.WaitGroup
		for i := range mix {
			wg.Add(1)
			go func(r *server.JobRequest) {
				defer wg.Done()
				if _, _, err := submit(cli, r); err != nil {
					rec.add(err)
					fmt.Fprintf(os.Stderr, "warmup: %v\n", err)
				}
			}(&mix[i])
		}
		wg.Wait()
		fmt.Printf("warmup done in %.1fs\n", time.Since(start).Seconds())
	}

	fmt.Printf("load: %d clients, %d requests over a %d-job mix\n", *clients, *requests, len(mix))
	lats := make([]time.Duration, *requests)
	var cachedCount atomic.Int32
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *requests {
					return
				}
				t0 := time.Now()
				_, cached, err := submit(cli, &mix[i%len(mix)])
				lats[i] = time.Since(t0)
				if err != nil {
					rec.add(err)
					continue
				}
				if cached {
					cachedCount.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration { return lats[min(len(lats)-1, int(q*float64(len(lats))))] }
	errCount := rec.count()
	ok := *requests - errCount
	fmt.Printf("\n%d requests in %.2fs (%.0f req/s), %d errors, %d retries\n",
		*requests, wall.Seconds(), float64(*requests)/wall.Seconds(), errCount, cli.Retries())
	fmt.Printf("latency  p50 %s  p90 %s  p99 %s  p99.9 %s  max %s\n",
		pct(0.50), pct(0.90), pct(0.99), pct(0.999), lats[len(lats)-1])
	if ok > 0 {
		fmt.Printf("cache    %d/%d responses cached (%.1f%% hit rate)\n",
			cachedCount.Load(), ok, 100*float64(cachedCount.Load())/float64(ok))
	}
	dumpStats(cli)

	divergent := 0
	if *verify {
		divergent = verifyMix(cli, opt, mix)
	}
	if drain != nil {
		drain()
	}
	if errCount > 0 || divergent > 0 {
		rec.dump(os.Stderr, *requests, cli, divergent)
		os.Exit(1)
	}
}

// errorRecorder classifies ultimate (post-retry) failures for the
// machine-readable summary CI asserts on.
type errorRecorder struct {
	mu      sync.Mutex
	errs    int
	byClass map[string]int
	sample  []string
}

// add classifies one failed request: API errors by HTTP status, job
// failures and transport faults by kind.
func (r *errorRecorder) add(err error) {
	class := "transport"
	var ae *server.APIError
	if errors.As(err, &ae) {
		class = "http_" + strconv.Itoa(ae.Status)
	} else if errors.Is(err, errJobFailed) {
		class = "job_failed"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.errs++
	r.byClass[class]++
	if len(r.sample) < 5 {
		r.sample = append(r.sample, err.Error())
	}
}

func (r *errorRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.errs
}

// dump writes the structured failure summary as one JSON line prefixed
// with "warpload: FAIL " — the contract scripts/service_smoke.sh greps.
func (r *errorRecorder) dump(w *os.File, requests int, cli *server.Client, divergent int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	summary := struct {
		Requests  int            `json:"requests"`
		Errors    int            `json:"errors"`
		Divergent int            `json:"divergent"`
		Retries   int64          `json:"retries"`
		Hedges    int64          `json:"hedges"`
		ByClass   map[string]int `json:"by_class"`
		Sample    []string       `json:"sample,omitempty"`
	}{requests, r.errs, divergent, cli.Retries(), cli.Hedges(), r.byClass, r.sample}
	data, err := json.Marshal(summary)
	if err != nil {
		data = []byte(`{"errors":` + strconv.Itoa(r.errs) + `}`)
	}
	fmt.Fprintf(w, "warpload: FAIL %s\n", data)
}

// jobMix is the golden 32-run matrix: the quick sync suite under
// GTO/CAWA with BOWS off and on, on the 2-SM Fermi — the same runs the
// golden-stats gate pins, so results are independently known-good.
func jobMix() []server.JobRequest {
	kernels := []string{"TB", "ST", "DS", "ATM", "HT", "TSP", "NW1", "NW2"}
	var mix []server.JobRequest
	for _, k := range kernels {
		for _, sched := range []string{"GTO", "CAWA"} {
			for _, bows := range []string{"off", "ddos"} {
				mix = append(mix, server.JobRequest{Kernel: k, Wait: true,
					Config: server.JobConfig{SMs: 2, Quick: true, Sched: sched, BOWS: bows}})
			}
		}
	}
	return mix
}

// startLocal runs an in-process daemon on a loopback port and returns
// its base URL and a drain func.
func startLocal(opt server.Options) (string, func(), error) {
	s, err := server.New(opt)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)
	drain := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		defer cancel()
		httpSrv.Shutdown(ctx)
		s.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), drain, nil
}

// errJobFailed marks a job the daemon admitted and ran but that finished
// with a simulation error.
var errJobFailed = errors.New("job failed")

// submit posts one synchronous job through the hardened client and
// returns its result key and whether the response was served from cache.
func submit(cli *server.Client, req *server.JobRequest) (key string, cached bool, err error) {
	st, err := cli.Submit(context.Background(), req)
	if err != nil {
		return "", false, err
	}
	if st.Err != "" {
		return st.Key, st.Cached, fmt.Errorf("%w: job %s: %s", errJobFailed, st.ID, st.Err)
	}
	return st.Key, st.Cached, nil
}

// dumpStats prints the daemon's own view (GET /v1/stats).
func dumpStats(cli *server.Client) {
	st, err := cli.Stats(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "stats: %v\n", err)
		return
	}
	fmt.Printf("server   engine runs %d, deduped %d, cache %d/%d hits (%.1f%%), evictions %d, latency p50 %dµs p99 %dµs\n",
		st.Jobs.EngineRuns, st.Jobs.Deduped, st.Cache.Hits, st.Cache.Hits+st.Cache.Misses,
		100*st.Cache.HitRate, st.Cache.Evictions, st.LatencyUS.P50, st.LatencyUS.P99)
	if st.Store != nil {
		fmt.Printf("store    %d entries (%d/%d bytes), %d hits, %d quarantined\n",
			st.Store.Entries, st.Store.Bytes, st.Store.MaxBytes, st.Store.Hits, st.Store.Quarantined)
	}
}

// verifyMix re-runs every distinct job directly on the engine (same
// resolution path the daemon admits with) and compares cycles and the
// full counter snapshot against the cached manifest. Returns the number
// of divergent jobs (zero is the acceptance bar: the service must be a
// transparent cache over the deterministic engine).
func verifyMix(cli *server.Client, opt server.Options, mix []server.JobRequest) int {
	fmt.Printf("\nverify: re-running %d jobs directly on the engine...\n", len(mix))
	divergent := 0
	for i := range mix {
		req := mix[i]
		spec, rerr := opt.Resolve(&req)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "verify: resolve: %v\n", rerr)
			divergent++
			continue
		}
		key, _, err := submit(cli, &req)
		if err != nil {
			fmt.Fprintf(os.Stderr, "verify: %v\n", err)
			divergent++
			continue
		}
		data, err := cli.Result(context.Background(), key)
		if err != nil {
			fmt.Fprintf(os.Stderr, "verify: fetch result: %v\n", err)
			divergent++
			continue
		}
		var m metrics.Manifest
		if err := json.Unmarshal(data, &m); err != nil || len(m.Runs) != 1 {
			fmt.Fprintf(os.Stderr, "verify: manifest for %s: %v (%d runs)\n", key, err, len(m.Runs))
			divergent++
			continue
		}
		out := exp.Cfg{Jobs: 1}.Execute([]exp.Spec{spec})[0]
		if out.Err != nil {
			fmt.Fprintf(os.Stderr, "verify: direct run %s: %v\n", req.Kernel, out.Err)
			divergent++
			continue
		}
		rec := m.Runs[0]
		switch {
		case out.Res.Stats.Cycles != rec.Cycles:
			fmt.Fprintf(os.Stderr, "verify: %s %s: cycles %d (direct) != %d (cached)\n",
				req.Kernel, rec.Variant, out.Res.Stats.Cycles, rec.Cycles)
			divergent++
		case !reflect.DeepEqual(out.Res.Metrics.Counters, rec.Counters):
			fmt.Fprintf(os.Stderr, "verify: %s %s: counter snapshots differ\n", req.Kernel, rec.Variant)
			divergent++
		}
	}
	if divergent == 0 {
		fmt.Printf("verify: zero divergence across %d jobs\n", len(mix))
	} else {
		fmt.Fprintf(os.Stderr, "verify: %d/%d jobs diverged\n", divergent, len(mix))
	}
	return divergent
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "warpload:", err)
	os.Exit(1)
}
