// Command warpsimd is the simulation-as-a-service daemon: a long-running
// HTTP/JSON server that accepts simulation jobs (registered kernels or
// inline ISA programs plus a configuration), validates them with the
// static analyzer at admission, runs them on a bounded worker pool, and
// serves results from a content-addressed cache keyed by (program FNV,
// config hash, sim version) — so repeated submissions return instantly
// and byte-identically.
//
//	warpsimd -addr :8723 -workers 8 -journal /var/tmp/warpsimd.jsonl
//
// Endpoints: POST /v1/jobs, GET /v1/jobs/{id}, GET /v1/results/{key},
// GET /v1/stats, GET /healthz (see README "Serving simulations" for the
// curl quickstart). SIGTERM/SIGINT drain gracefully: admission stops,
// queued and running jobs finish, and — with -journal — anything still
// unfinished at a hard kill is re-enqueued on next start.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"warpsched/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8723", "listen address")
		workers      = flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "admission queue depth; beyond it submissions get HTTP 429")
		cacheMB      = flag.Int64("cache-mb", 256, "result cache memory bound in MiB")
		maxCycles    = flag.Int64("max-cycles", 10_000_000, "per-job watchdog cycle ceiling")
		retries      = flag.Int("retries", 1, "bounded re-runs of panicked simulations")
		shards       = flag.Int("shards", 1, "SM shards per engine (results identical for every value)")
		noFF         = flag.Bool("no-ff", false, "disable event-driven fast-forward (results identical either way)")
		check        = flag.Bool("check", false, "arm runtime invariant checking and early hang aborts on every job")
		journal      = flag.String("journal", "", "recovery journal path (empty = no crash recovery)")
		storeDir     = flag.String("store", "", "persistent result store directory (empty = memory-only cache)")
		storeMB      = flag.Int64("store-mb", 4096, "persistent store size bound in MiB")
		degradeAfter = flag.Int("degrade-after", 5, "consecutive saturated 1s windows before inline admission degrades to cache-only")
		drainSecs    = flag.Int("drain-timeout", 600, "seconds to wait for in-flight jobs on shutdown")
		quiet        = flag.Bool("quiet", false, "suppress per-job log lines")
	)
	flag.Parse()

	opt := server.Options{
		Workers: *workers, QueueDepth: *queue, CacheBytes: *cacheMB << 20,
		MaxJobCycles: *maxCycles, Retries: *retries, Shards: *shards,
		NoFastForward: *noFF, Check: *check, Journal: *journal,
		StoreDir: *storeDir, StoreBytes: *storeMB << 20,
		DegradeAfter: *degradeAfter,
	}
	if !*quiet {
		opt.Log = log.Printf
	}
	s, err := server.New(opt)
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	log.Printf("warpsimd: serving on %s (workers=%d queue=%d cache=%dMiB store=%q journal=%q)",
		ln.Addr(), opt.Workers, opt.QueueDepth, *cacheMB, *storeDir, *journal)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case got := <-sig:
		log.Printf("warpsimd: %v — draining", got)
	case err := <-errCh:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSecs)*time.Second)
	defer cancel()
	// Stop the listener first so no new requests race the drain, then
	// let queued and running jobs finish.
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("warpsimd: http shutdown: %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	log.Printf("warpsimd: drained cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "warpsimd:", err)
	os.Exit(1)
}
