// Command doccheck verifies godoc coverage: every exported top-level
// symbol (type, function, method, var, const) in the packages it is
// pointed at must carry a doc comment. It is a plain-parser lint — no
// type checking, no external dependencies — wired into scripts/check.sh
// so exported API cannot land undocumented.
//
//	go run ./cmd/doccheck ./internal/report ./internal/exp .
//
// A const/var block's doc comment covers every spec in the block; an
// individual spec comment covers just that spec. Test files and
// generated files are skipped. Exits 1 listing each undocumented symbol
// as file:line: name.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package dir>...")
		os.Exit(2)
	}
	var problems []string
	for _, dir := range os.Args[1:] {
		p, err := checkDir(strings.TrimSuffix(dir, "/..."))
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported symbols\n", len(problems))
		os.Exit(1)
	}
}

func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s is undocumented", filepath.ToSlash(p.Filename), p.Line, name))
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
						report(d.Pos(), funcName(d))
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return out, nil
}

// receiverExported reports whether a method's receiver type is itself
// exported (methods on unexported types are internal API).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	return "method " + d.Name.Name
}

func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	blockDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type "+s.Name.Name)
			}
		case *ast.ValueSpec:
			if blockDoc || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), n.Name)
				}
			}
		}
	}
}
