// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp fig9          # one experiment
//	experiments -exp all           # everything, paper order
//	experiments -exp all -quick    # reduced inputs (fast smoke pass)
//	experiments -list              # registry
//
// Each experiment prints a text table followed by the paper's reported
// numbers for comparison; EXPERIMENTS.md archives a full run.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"warpsched/internal/exp"
)

func main() {
	var (
		name    = flag.String("exp", "all", "experiment name or 'all'")
		quick   = flag.Bool("quick", false, "use reduced kernel sizes")
		sms     = flag.Int("sms", 0, "override simulated SM count (0 = experiment default)")
		jobs    = flag.Int("j", 0, "simulations to run concurrently (0 = GOMAXPROCS, 1 = serial); output is identical for every value")
		verbose = flag.Bool("v", false, "print per-run progress")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-11s %s\n", e.Name, e.Title)
		}
		return
	}

	cfg := exp.Cfg{SMs: *sms, Quick: *quick, Jobs: *jobs}
	if *verbose {
		cfg.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  ..", line) }
	}

	var todo []exp.Experiment
	if *name == "all" {
		todo = exp.All()
	} else {
		e, err := exp.ByName(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		todo = []exp.Experiment{e}
	}

	for _, e := range todo {
		fmt.Printf("==== %s: %s ====\n", e.Name, e.Title)
		t0 := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Println(res)
		fmt.Printf("(%s completed in %v)\n\n", e.Name, time.Since(t0).Round(time.Millisecond))
	}
}
