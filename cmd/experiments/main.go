// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp fig9          # one experiment
//	experiments -exp all           # everything, paper order
//	experiments -exp all -quick    # reduced inputs (fast smoke pass)
//	experiments -list              # registry
//
// Each experiment prints a text table followed by the paper's reported
// numbers for comparison; EXPERIMENTS.md archives a full run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"warpsched/internal/exp"
	"warpsched/internal/report"
	"warpsched/internal/server"
)

func main() {
	var (
		name      = flag.String("exp", "all", "experiment name or 'all'")
		quick     = flag.Bool("quick", false, "use reduced kernel sizes")
		sms       = flag.Int("sms", 0, "override simulated SM count (0 = experiment default)")
		jobs      = flag.Int("j", 0, "simulations to run concurrently (0 = GOMAXPROCS, 1 = serial); output is identical for every value")
		verbose   = flag.Bool("v", false, "print per-run progress")
		list      = flag.Bool("list", false, "list experiments and exit")
		statsJSON = flag.String("stats-json", "", "write a machine-readable run manifest (per-simulation counters) to this file")
		check     = flag.Bool("check", false, "enable runtime invariant checking and early hang aborts in every simulation")
		resume    = flag.String("resume", "", "crash-tolerant run journal (created if missing); completed runs found in it are replayed instead of re-simulated")
		retries   = flag.Int("retries", 0, "retry a run that panics up to N times before recording the failure")
		reportDir = flag.String("report", "", "after the sweep, render the reproduction report (REPRODUCTION.md + SVG figures) from the collected manifest into this directory")
		shards    = flag.Int("shards", 1, "tick each simulation's SMs on this many worker goroutines; output is identical for every value")
		noFF      = flag.Bool("no-ff", false, "disable event-driven fast-forward and tick every cycle; output is identical either way")
		remote    = flag.String("remote", "", "offload simulations to a warpsimd daemon at this base URL (e.g. http://localhost:8723); remote-unsafe experiments and unmappable runs use the local engine")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-11s %s\n", e.Name, e.Title)
		}
		return
	}

	cfg := exp.Cfg{SMs: *sms, Quick: *quick, Jobs: *jobs, Check: *check, Retries: *retries,
		Shards: *shards, NoFastForward: *noFF}
	if *verbose {
		cfg.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  ..", line) }
	}
	if *resume != "" {
		j, err := exp.OpenJournal(*resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer j.Close()
		cfg.Journal = j
	}
	// Remote offload adapter: one hardened client, shared across runs.
	// Manifest collection is refused because remote outcomes carry the
	// daemon's aggregated counters, not the per-SM snapshot records need.
	var remoteFn func(exp.Spec) (exp.Outcome, bool)
	if *remote != "" {
		if *statsJSON != "" || *reportDir != "" {
			fmt.Fprintln(os.Stderr, "experiments: -remote cannot be combined with -stats-json or -report (manifest collection needs local per-SM counters)")
			os.Exit(1)
		}
		cli := server.NewClient(*remote, server.ClientOptions{})
		var warnOnce sync.Once
		remoteFn = func(sp exp.Spec) (exp.Outcome, bool) {
			out, err := cli.RunSpec(context.Background(), sp)
			if err != nil {
				if !errors.Is(err, server.ErrNotMappable) {
					warnOnce.Do(func() {
						fmt.Fprintf(os.Stderr, "experiments: remote %s: %v (falling back to the local engine)\n", *remote, err)
					})
				}
				return exp.Outcome{}, false
			}
			return out, true
		}
	}

	var col *exp.Collector
	if *statsJSON != "" || *reportDir != "" {
		// The config map deliberately omits -j, -shards and -no-ff (the
		// manifest, and its config hash, is identical for every worker
		// count and for either clock implementation) and the
		// experiment selection (records carry their experiment tag, so
		// same-scale manifests from different -exp invocations share a
		// config hash and can be joined by cmd/warpreport).
		col = exp.NewCollector("experiments", map[string]any{
			"quick": *quick, "sms": *sms,
		})
		cfg.Collect = col
	}

	var todo []exp.Experiment
	if *name == "all" {
		todo = exp.All()
	} else {
		e, err := exp.ByName(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		todo = []exp.Experiment{e}
	}

	start := time.Now()
	for _, e := range todo {
		fmt.Printf("==== %s: %s ====\n", e.Name, e.Title)
		t0 := time.Now()
		cfg.Exp = e.Name
		cfg.Remote = nil
		if remoteFn != nil {
			if e.RemoteSafe() {
				cfg.Remote = remoteFn
			} else {
				fmt.Fprintf(os.Stderr, "experiments: %s consumes engine-only outputs; running locally\n", e.Name)
			}
		}
		res, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Println(res)
		fmt.Printf("(%s completed in %v)\n\n", e.Name, time.Since(t0).Round(time.Millisecond))
	}

	if cfg.Journal != nil {
		fmt.Fprintf(os.Stderr, "experiments: journal %s holds %d runs (%d replayed this invocation)\n",
			*resume, cfg.Journal.Len(), cfg.Journal.Hits())
	}

	if col != nil {
		m := col.Manifest()
		m.WallMS = float64(time.Since(start).Microseconds()) / 1e3
		if *statsJSON != "" {
			if err := m.WriteFile(*statsJSON); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "experiments: wrote manifest (%d runs) to %s\n", len(m.Runs), *statsJSON)
		}
		if *reportDir != "" {
			rep, err := report.Build(m)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			paths, err := rep.Write(filepath.Join(*reportDir, "REPRODUCTION.md"), filepath.Join(*reportDir, "figures"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "experiments: wrote report (%d files) under %s\n", len(paths), *reportDir)
		}
	}
}
