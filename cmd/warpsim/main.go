// Command warpsim runs one benchmark kernel on the simulator and prints a
// statistics report.
//
// Usage:
//
//	warpsim -kernel HT -sched GTO -bows ddos -gpu fermi -sms 4
//
// warpsim -list prints the available kernels.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"warpsched"
	"warpsched/internal/metrics"
)

func main() {
	var (
		kernel    = flag.String("kernel", "HT", "kernel name (see -list)")
		sched     = flag.String("sched", "GTO", "warp scheduler: LRR, GTO, CAWA or WASP (see docs/SCHEDULERS.md)")
		detector  = flag.String("detector", "DDOS", "spin detector: DDOS or TAGE")
		bows      = flag.String("bows", "off", "BOWS mode: off, ddos or static")
		delay     = flag.Int64("delay", -1, "fixed back-off delay limit in cycles (-1 = adaptive)")
		gpu       = flag.String("gpu", "fermi", "GPU configuration: fermi (GTX480) or pascal (GTX1080Ti)")
		sms       = flag.Int("sms", 0, "scale the machine down to this many SMs (0 = full)")
		hash      = flag.String("hash", "XOR", "DDOS hashing function: XOR or MODULO")
		listing   = flag.Bool("asm", false, "print the kernel's assembly listing before running")
		profile   = flag.Bool("profile", false, "print a per-PC issue-count heatmap after running")
		traceN    = flag.Int("trace", 0, "print the last N pipeline events (issues, SIBs, back-off exits)")
		list      = flag.Bool("list", false, "list available kernels and exit")
		statsJSON = flag.String("stats-json", "", "write a machine-readable run manifest (full per-SM counter snapshot) to this file")
		check     = flag.Bool("check", false, "enable runtime invariant checking and early hang aborts (diagnoses deadlock/livelock/starvation)")
		faultSeed = flag.Uint64("fault-seed", 0, "inject deterministic memory faults (latency spikes, reordering, atomic retry storms) with this seed; 0 = off")
		faultRate = flag.Float64("fault-rate", 1.0, "scale fault-injection probabilities by this factor (with -fault-seed)")
		shards    = flag.Int("shards", 1, "tick SMs on this many worker goroutines (results are cycle-identical for every value)")
		noFF      = flag.Bool("no-ff", false, "disable event-driven fast-forward and tick every cycle (results are cycle-identical either way)")
	)
	flag.Parse()

	if *list {
		names := warpsched.KernelNames()
		sort.Strings(names)
		for _, n := range names {
			k, _ := warpsched.Kernel(n)
			fmt.Printf("%-8s %s\n", n, k.Desc)
		}
		return
	}

	k, err := warpsched.Kernel(*kernel)
	if err != nil {
		fatal(err)
	}

	opt := warpsched.DefaultOptions()
	switch strings.ToLower(*gpu) {
	case "fermi", "gtx480":
		opt.GPU = warpsched.GTX480()
	case "pascal", "gtx1080ti":
		opt.GPU = warpsched.GTX1080Ti()
	default:
		fatal(fmt.Errorf("unknown GPU %q", *gpu))
	}
	if *sms > 0 {
		opt.GPU = opt.GPU.Scaled(*sms)
	}
	opt.Sched = warpsched.SchedulerKind(strings.ToUpper(*sched))
	switch opt.Sched {
	case warpsched.LRR, warpsched.GTO, warpsched.CAWA:
	case warpsched.WASP:
		opt.WaSP = warpsched.DefaultWaSP()
	default:
		// Usage error, not a runtime failure: name the valid kinds.
		usageError(fmt.Errorf("unknown scheduler %q (valid kinds: LRR, GTO, CAWA, WASP)", *sched))
	}
	switch strings.ToUpper(*detector) {
	case "DDOS":
		opt.Detector = warpsched.DetectDDOS
	case "TAGE":
		opt.Detector = warpsched.DetectTAGE
		opt.TAGE = warpsched.DefaultTAGE()
	default:
		usageError(fmt.Errorf("unknown detector %q (valid kinds: DDOS, TAGE)", *detector))
	}
	switch strings.ToLower(*bows) {
	case "off":
		opt.BOWS.Mode = warpsched.BOWSOff
	case "ddos":
		opt.BOWS = warpsched.DefaultBOWS()
	case "static":
		opt.BOWS = warpsched.DefaultBOWS()
		opt.BOWS.Mode = warpsched.BOWSStatic
	default:
		fatal(fmt.Errorf("unknown BOWS mode %q", *bows))
	}
	if *delay >= 0 && opt.BOWS.Mode != warpsched.BOWSOff {
		mode := opt.BOWS.Mode
		opt.BOWS = warpsched.FixedBOWS(*delay)
		opt.BOWS.Mode = mode
	}
	if strings.EqualFold(*hash, "modulo") {
		opt.DDOS.Hash = "MODULO"
	}
	if *check {
		opt.Check = true
		opt.HangWindow = warpsched.DefaultHangWindow
	}
	if *faultSeed != 0 {
		f := warpsched.DefaultFaults(*faultSeed).Scale(*faultRate)
		opt.Faults = &f
	}
	opt.Shards = *shards
	opt.NoFastForward = *noFF

	if *listing {
		fmt.Println(k.Launch.Prog.Listing())
	}
	opt.Profile = *profile
	var ring *warpsched.TraceRing
	if *traceN > 0 {
		ring = warpsched.NewTraceRing(*traceN)
		opt.Tracer = ring
	}

	start := time.Now()
	res, err := warpsched.Run(opt, k)
	if err != nil {
		fatal(err)
	}
	wallMS := float64(time.Since(start).Microseconds()) / 1e3

	if *statsJSON != "" {
		m := metrics.NewManifest("warpsim", map[string]any{
			"kernel": k.Name, "sched": string(opt.Sched), "bows": string(opt.BOWS.Mode),
			"gpu": opt.GPU.Name, "delay": *delay, "hash": string(opt.DDOS.Hash),
		})
		rec := metrics.RunRecord{
			Kernel: k.Name,
			GPU:    opt.GPU.Name,
			Sched:  string(opt.Sched),
			BOWS:   string(opt.BOWS.Mode),
			// The detector and WaSP dimensions are omitted when inactive so
			// hashes of pre-zoo invocations are unchanged (mirrors
			// exp.variantHash).
			Variant: metrics.HashJSON(struct {
				GPU      warpsched.GPU
				Sched    warpsched.SchedulerKind
				BOWS     warpsched.BOWSConfig
				DDOS     warpsched.DDOSConfig
				Detector warpsched.DetectorKind `json:",omitempty"`
				TAGE     *warpsched.TAGEConfig  `json:",omitempty"`
				WaSP     *warpsched.WaSPConfig  `json:",omitempty"`
				Kernel   string
			}{opt.GPU, opt.Sched, opt.BOWS, opt.DDOS, hashDetector(opt), hashTAGE(opt), hashWaSP(opt), k.Name}),
			Cycles: res.Stats.Cycles,
			WallMS: wallMS,
		}
		// warpsim is a single run, so the manifest keeps the full per-SM
		// resolution instead of machine totals.
		if res.Metrics != nil {
			rec.Counters = res.Metrics.Counters
			rec.Derived = res.Metrics.Gauges
		}
		if err := m.Add(rec); err != nil {
			fatal(err)
		}
		m.WallMS = wallMS
		if err := m.WriteFile(*statsJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "warpsim: wrote manifest to %s\n", *statsJSON)
	}

	s := &res.Stats
	fmt.Printf("kernel           %s — %s\n", k.Name, k.Desc)
	fmt.Printf("machine          %s, %s scheduler, BOWS=%s\n", opt.GPU.Name, opt.Sched, opt.BOWS.Mode)
	fmt.Printf("cycles           %d (%.3f ms at %d MHz)\n", s.Cycles,
		float64(s.Cycles)/(float64(opt.GPU.CoreClockMHz)*1000), opt.GPU.CoreClockMHz)
	if res.FFJumps > 0 || res.FFSkippedSMTicks > 0 {
		fmt.Printf("clock            %d event jumps covering %d cycles (%.1f%% of simulated time), %d dormant SM-ticks skipped\n",
			res.FFJumps, res.FFSkippedCycles, 100*float64(res.FFSkippedCycles)/float64(s.Cycles),
			res.FFSkippedSMTicks)
	}
	fmt.Printf("warp instrs      %d  (thread instrs %d, %.1f%% sync overhead)\n",
		s.WarpInstrs, s.ThreadInstrs, 100*s.SyncInstrFraction())
	fmt.Printf("SIMD efficiency  %.1f%%\n", 100*s.SIMDEfficiency())
	fmt.Printf("memory           %d transactions (%.1f%% sync), L1 %d/%d hits, L2 %d/%d hits, DRAM %d, atomics %d\n",
		s.Mem.Transactions, 100*s.SyncMemFraction(),
		s.Mem.L1Hits, s.Mem.L1Accesses, s.Mem.L2Hits, s.Mem.L2Accesses,
		s.Mem.DRAMAccesses, s.Mem.AtomicOps)
	fmt.Printf("locks            %d acquired, %d inter-warp fails, %d intra-warp fails; wait exits %d ok / %d fail\n",
		s.Sync.LockSuccess, s.Sync.InterWarpFail, s.Sync.IntraWarpFail,
		s.Sync.WaitExitSuccess, s.Sync.WaitExitFail)
	if opt.BOWS.Mode != warpsched.BOWSOff {
		fmt.Printf("BOWS             backed-off warp share %.1f%%, final delay limits %v\n",
			100*s.BackedOffFraction(), res.FinalDelayLimits)
	}
	det := res.Detection
	fmt.Printf("%-16s TSDR %.2f (%d/%d), FSDR %.2f (%d/%d), confirmed SIB PCs %v (true: %v)\n",
		string(opt.Detector),
		det.TSDR(), det.TrueDetected, det.TrueSeen,
		det.FSDR(), det.FalseDetected, det.FalseSeen,
		res.ConfirmedSIBs, k.Launch.Prog.TrueSIBs)
	fmt.Printf("energy           %s\n", warpsched.Energy(opt, res))

	if ring != nil {
		fmt.Printf("\nlast %d pipeline events (%d total):\n%s", *traceN, ring.Total(), ring.Dump())
	}

	if *profile {
		fmt.Println("\nper-PC issue counts (hot instructions are where the machine spends issue slots):")
		var total int64
		for _, n := range res.PCProfile {
			total += n
		}
		prog := k.Launch.Prog
		for pc := int32(0); pc < prog.Len(); pc++ {
			n := res.PCProfile[pc]
			barLen := 0
			if total > 0 {
				barLen = int(50 * n / (total + 1))
			}
			fmt.Printf("%10d %5.1f%% %-20s %04d: %s\n", n, 100*float64(n)/float64(total),
				strings.Repeat("#", barLen), pc, prog.At(pc).Op)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "warpsim:", err)
	os.Exit(1)
}

// usageError reports a bad flag value with the usage text, exit code 2
// (a misuse, not a simulation failure).
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "warpsim:", err)
	flag.Usage()
	os.Exit(2)
}

// hashDetector, hashTAGE and hashWaSP feed the variant hash: the zoo
// dimensions appear only when active, keeping pre-zoo hashes stable.
func hashDetector(opt warpsched.Options) warpsched.DetectorKind {
	if opt.Detector == warpsched.DetectTAGE {
		return opt.Detector
	}
	return ""
}

func hashTAGE(opt warpsched.Options) *warpsched.TAGEConfig {
	if opt.Detector == warpsched.DetectTAGE {
		return &opt.TAGE
	}
	return nil
}

func hashWaSP(opt warpsched.Options) *warpsched.WaSPConfig {
	if opt.Sched == warpsched.WASP {
		return &opt.WaSP
	}
	return nil
}
