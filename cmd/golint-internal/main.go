// Command golint-internal enforces the determinism contract of the
// simulation core at the Go-source level: packages it is pointed at may
// not import math/rand (any randomness must come from seeded injectors
// like mem.FaultConfig) and may not call time.Now (wall-clock reads make
// cycle-exact replay and the content-addressed result cache unsound —
// simulated time is the only clock). It is a plain-parser lint in the
// style of cmd/doccheck — no type checking, no external dependencies —
// wired into scripts/check.sh and the CI lint job over internal/sim and
// internal/mem:
//
//	go run ./cmd/golint-internal ./internal/sim ./internal/mem
//
// Test files are exempt: harnesses legitimately time out and shuffle.
// Exits 1 listing each violation as file:line: message.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: golint-internal <package dir>...")
		os.Exit(2)
	}
	var problems []string
	for _, dir := range os.Args[1:] {
		p, err := checkDir(strings.TrimSuffix(dir, "/..."))
		if err != nil {
			fmt.Fprintf(os.Stderr, "golint-internal: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "golint-internal: %d determinism violations\n", len(problems))
		os.Exit(1)
	}
}

func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			out = append(out, checkFile(fset, f)...)
		}
	}
	return out, nil
}

// checkFile flags math/rand imports and calls through any local name of
// the time package whose selector is Now. Import aliases are honoured,
// so `import t "time"; t.Now()` is caught and a local variable named
// `time` is not.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	timeNames := map[string]bool{}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		switch path {
		case "math/rand", "math/rand/v2":
			pos := fset.Position(imp.Pos())
			out = append(out, fmt.Sprintf("%s:%d: import %s forbidden: use a seeded injector, not ambient randomness",
				pos.Filename, pos.Line, path))
		case "time":
			name := "time"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if name != "_" && name != "." {
				timeNames[name] = true
			}
		}
	}
	if len(timeNames) == 0 {
		return out
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Now" {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		// Obj == nil distinguishes the package name from a shadowing
		// local declaration, which the parser resolves file-locally.
		if !ok || !timeNames[id.Name] || id.Obj != nil {
			return true
		}
		pos := fset.Position(sel.Pos())
		out = append(out, fmt.Sprintf("%s:%d: time.Now forbidden: simulated cycles are the only clock",
			pos.Filename, pos.Line))
		return true
	})
	return out
}
