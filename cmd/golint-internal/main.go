// Command golint-internal enforces the determinism contract of the
// simulation core at the Go-source level: packages it is pointed at may
// not import math/rand (any randomness must come from seeded injectors
// like mem.FaultConfig) and may not call time.Now (wall-clock reads make
// cycle-exact replay and the content-addressed result cache unsound —
// simulated time is the only clock). In internal/store it additionally
// enforces the durability contract: only atomic.go may call os.Rename
// or os.WriteFile — every other write must go through the FS interface
// and its temp-file + fsync + rename protocol, or crash-safety and
// fault injection silently stop covering it. It is a plain-parser lint
// in the style of cmd/doccheck — no type checking, no external
// dependencies — wired into scripts/check.sh and the CI lint job:
//
//	go run ./cmd/golint-internal ./internal/sim ./internal/mem ./internal/store ./internal/sched
//
// Test files are exempt: harnesses legitimately time out, shuffle and
// corrupt files in place. Exits 1 listing each violation as
// file:line: message.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: golint-internal <package dir>...")
		os.Exit(2)
	}
	var problems []string
	for _, dir := range os.Args[1:] {
		p, err := checkDir(strings.TrimSuffix(dir, "/..."))
		if err != nil {
			fmt.Fprintf(os.Stderr, "golint-internal: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "golint-internal: %d determinism violations\n", len(problems))
		os.Exit(1)
	}
}

func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	storePkg := strings.HasSuffix(strings.TrimSuffix(strings.ReplaceAll(dir, "\\", "/"), "/"), "internal/store")
	var out []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			out = append(out, checkFile(fset, f, storePkg)...)
		}
	}
	return out, nil
}

// checkFile flags math/rand imports and calls through any local name of
// the time package whose selector is Now. Import aliases are honoured,
// so `import t "time"; t.Now()` is caught and a local variable named
// `time` is not. In internal/store it also flags os.Rename and
// os.WriteFile calls outside atomic.go, which owns the write protocol.
func checkFile(fset *token.FileSet, f *ast.File, storePkg bool) []string {
	var out []string
	timeNames := map[string]bool{}
	osNames := map[string]bool{}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		switch path {
		case "math/rand", "math/rand/v2":
			pos := fset.Position(imp.Pos())
			out = append(out, fmt.Sprintf("%s:%d: import %s forbidden: use a seeded injector, not ambient randomness",
				pos.Filename, pos.Line, path))
		case "time":
			name := "time"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if name != "_" && name != "." {
				timeNames[name] = true
			}
		case "os":
			name := "os"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if name != "_" && name != "." {
				osNames[name] = true
			}
		}
	}
	// Bare file writes bypass the store's temp-file + fsync + rename
	// protocol (and its FaultFS coverage); only atomic.go implements it.
	checkOS := storePkg && len(osNames) > 0 &&
		!strings.HasSuffix(fset.Position(f.Pos()).Filename, "atomic.go")
	if len(timeNames) == 0 && !checkOS {
		return out
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		// Obj == nil distinguishes the package name from a shadowing
		// local declaration, which the parser resolves file-locally.
		if !ok || id.Obj != nil {
			return true
		}
		pos := fset.Position(sel.Pos())
		switch {
		case sel.Sel.Name == "Now" && timeNames[id.Name]:
			out = append(out, fmt.Sprintf("%s:%d: time.Now forbidden: simulated cycles are the only clock",
				pos.Filename, pos.Line))
		case checkOS && osNames[id.Name] &&
			(sel.Sel.Name == "Rename" || sel.Sel.Name == "WriteFile"):
			out = append(out, fmt.Sprintf("%s:%d: os.%s forbidden outside atomic.go: use the FS write protocol",
				pos.Filename, pos.Line, sel.Sel.Name))
		}
		return true
	})
	return out
}
