# Internal helper used once to assemble EXPERIMENTS.md from the archived
# harness run; kept for reproducibility of the document itself.
import re

def clean(path):
    t = open(path).read()
    return '\n'.join(l for l in t.split('\n') if 'WARNING' not in l)

def section(text, name):
    m = re.search(r'==== %s:.*?completed in [^)]*\)\n' % name, text, re.S)
    return m.group(0) if m else ''

run1 = clean('/root/repo/experiments_output.txt')
run2 = clean('/root/repo/experiments_output2.txt')
order = ['fig1', 'fig2', 'fig3', 'table1', 'fig9', 'delaysweep',
         'fig14', 'fig15', 'fig16', 'ablation', 'table2', 'table3']
parts = []
for name in order:
    sec = section(run2, name) or section(run1, name)
    if not sec:
        raise SystemExit('missing section ' + name)
    parts.append(sec)
raw = '\n'.join(parts)

summary = """
## Agreement summary

| Experiment | Paper result | Measured (this run) | Verdict |
|---|---|---|---|
| Fig. 1b GPU vs CPU | GPU wins at low contention (9.77x at 4096 buckets) | GPU crosses below the serial CPU between 512 and 1024 buckets, 2.2x faster at 4096 | shape ✓ |
| Fig. 1c/1d overheads | sync = 61-98% of instructions, 41-96% of traffic | 40-62% of instructions, 51-61% of traffic, growing with contention | trend ✓ (lower absolute contention) |
| Fig. 1e SIMD | 87-99% single-warp vs 16-47% multi-warp | 60-92% vs 21-48% | ✓ |
| Fig. 2 | most failures inter-warp; volume depends on scheduler | inter-warp fails dominate intra-warp ~5-40x; totals vary up to 1.4x across schedulers | ✓ |
| Fig. 3 | software back-off hurts except at very high contention | 0.90x at 128 buckets / factor 50, up to 46x worse elsewhere | ✓ |
| Table I | TSDR=1 and FSDR=0 for XOR m=k=8; DPR 0.041; MODULO FSDR 0.17/0.104; t=12 misses some SIBs; l<8 degrades; sharing → TSDR 0.642, DPR up | TSDR=1, FSDR=0, DPR 0.040; MODULO FSDR 0.32/0.25; t=8/12 TSDR 0.875 (TB, as the paper notes); l=1 → 0.375; sharing → TSDR 0.688, DPR 0.316 | ✓ (close, incl. the t=12/TB footnote) |
| Fig. 9 | BOWS speedup 2.2/1.4/1.5x, energy 2.3/1.7/1.6x vs LRR/GTO/CAWA | speedup 1.42/1.14/1.37x, energy 1.45/1.35/1.42x | shape ✓, smaller factors (scaled machine; our GTO lacks GPGPU-Sim's spin-priority pathology on HT, so the GTO gap is naturally narrower) |
| Figs. 10-13 | gains grow with delay up to a per-kernel threshold; TSP hurt by large delays; instructions 2.1x down; memory 19% down; SIMD up 3.4x (HT) | ATM/DS/HT improve monotonically with delay (to 4x at 5000); adaptive lands between 1000-5000; instructions 1.4x down (gmean), memory down, HT SIMD up | ✓ except ST (below) |
| Fig. 14 | XOR: no false detections; MODULO: only MS/HL slow down | XOR: none (exact); MODULO: 8/14 kernels slow down | XOR exact ✓; MODULO broader — every grid-stride loop in our suite advances by a power-of-two stride, the exact mechanism the paper diagnoses for MS/HL |
| Fig. 15 | Pascal: speedup 1.9/1.7/1.5x; scheduling matters less except DS, which degrades on Pascal from oversubscription and is rescued by BOWS | speedup 1.96/2.01/2.25x; DS baseline >11x worse than LRR (watchdog lower bound) and BOWS restores it to 0.22, ATM similar | ✓ including the §VI-D DS pathology |
| Fig. 16 | speedup 5x→1.2x from 128 to 4096 buckets; BOWS instruction count approaches ideal blocking as buckets grow | monotone decline reproduced (1.5-2x → ~1.0); ideal blocking measured with real queue-lock hardware rather than the paper's proxy; the BOWS-to-ideal gap closes as buckets grow | shape ✓ |
| Table III | 9216-bit histories, 560-bit SIB-PT, 672-bit counters | identical arithmetic | ✓ |
| Ablation (ours) | paper motivates but does not tabulate | deprioritization alone is ~neutral; the minimum delay drives the gains; static annotations ≈ DDOS-driven BOWS (detection is nearly free) | n/a |

Known divergences (also in DESIGN.md §6):

1. **ST slows under BOWS here** (paper: flat time, 17.8% energy gain; ours:
   ~2-2.4x slower, ~28% energy gain, 2.6x fewer wasted polls). Our scaled
   ST's polling hop latency (~300-600 cycles) sits *below* the back-off
   delay floor, so every wait-and-signal hop pays the delay; the paper's
   saturated ST had hop latencies above it. The energy/instruction
   effects — the paper's stated ST result — reproduce.
2. **MODULO hashing false-detects more kernels than the paper's two.**
   Same mechanism, denser trigger population in our suite (power-of-two
   grid strides).
3. **Magnitudes are compressed** relative to the paper throughout:
   4-SM machines with proportionally scaled inputs have less spinning
   parallelism to reclaim, and our baseline GTO does not exhibit
   GPGPU-Sim's pathological spin prioritization on HT.

## Raw harness output (archived run)

```
"""

doc_header = open('/root/repo/EXPERIMENTS.md').read().split('<!-- RESULTS -->')[0]
with open('/root/repo/EXPERIMENTS.md', 'w') as f:
    f.write(doc_header)
    f.write(summary)
    f.write(raw)
    f.write('\n```\n')
print("EXPERIMENTS.md written", len(raw), "bytes of raw output")
