module warpsched

go 1.22
