#!/usr/bin/env bash
# Repo gate: formatting (with simplification), build, vet, godoc coverage
# over the API packages, the docs-drift check (REPRODUCTION.md and the SVG
# figures must match what cmd/warpreport regenerates from the checked-in
# manifest), full test suite (including the golden-stats regression in
# internal/exp and the golden rendering tests in internal/report), the
# parallel-runner determinism tests under the race detector, the warplint
# static analyzer over every registered kernel, and an invariant-checked
# simulation smoke pass (-check arms the runtime invariant checker and
# hang diagnosis). Run from the repo root:
#
#   scripts/check.sh          # gate only
#   scripts/check.sh -bench   # gate + regenerate BENCH_PR7.json
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt -s =="
unformatted="$(gofmt -s -l .)"
if [[ -n "$unformatted" ]]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== warplint =="
go run ./cmd/warplint -all

echo "== golint-internal (determinism + store durability lint) =="
go run ./cmd/golint-internal ./internal/sim ./internal/mem ./internal/store ./internal/sched

echo "== doccheck (godoc coverage) =="
go run ./cmd/doccheck ./internal/report ./internal/exp ./internal/metrics \
    ./internal/server ./internal/store ./internal/sim ./internal/sched .

echo "== report drift (REPRODUCTION.md + docs/figures) =="
go run ./cmd/warpreport -manifest internal/report/testdata/full.json \
    -md REPRODUCTION.md -svg-dir docs/figures -check

echo "== go test =="
go test ./...

echo "== go test -race (runner determinism, fault injection, resume) =="
go test -race ./internal/exp -run TestRunner

echo "== invariant-checked smoke (warpsim -check) =="
go run ./cmd/warpsim -kernel HT -sms 2 -check > /dev/null
go run ./cmd/warpsim -kernel ATM -sms 2 -bows ddos -check -fault-seed 7 > /dev/null

echo "== persistent store smoke (crash-restart round trip) =="
go test ./internal/store -run 'TestRoundTrip|TestCrashRestartLoop' -count=1

if [[ "${1:-}" == "-bench" ]]; then
    # -f: regenerating the current PR's baseline is the one intentional
    # overwrite; bench_json.sh refuses all others.
    echo "== benchmarks -> BENCH_PR7.json =="
    scripts/bench_json.sh -f BENCH_PR7.json
fi

echo "OK"
