#!/usr/bin/env bash
# Repo gate: build, vet, full test suite, and the parallel-runner
# determinism tests under the race detector. Run from the repo root:
#
#   scripts/check.sh          # gate only
#   scripts/check.sh -bench   # gate + regenerate BENCH_PR1.json
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race (runner determinism) =="
go test -race ./internal/exp -run TestRunner

if [[ "${1:-}" == "-bench" ]]; then
    echo "== benchmarks -> BENCH_PR1.json =="
    scripts/bench_json.sh BENCH_PR1.json
fi

echo "OK"
