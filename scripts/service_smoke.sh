#!/usr/bin/env bash
# service_smoke.sh — end-to-end smoke test of the warpsimd daemon.
#
# Builds warpsimd, starts it on a local port with a persistent store,
# submits the same job twice, asserts the second response is a cache
# hit whose result bytes are identical to the first, SIGTERMs the
# daemon and asserts a clean drain (exit 0), then restarts on the same
# store and asserts the persisted key is a disk hit with byte-identical
# results across the restart. Finally asserts warpload's failure
# contract: against a dead port it must exit non-zero with a structured
# `warpload: FAIL {...}` summary on stderr. Run by the CI `service`
# job; safe to run locally (uses a temp dir, kills its own daemon).
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-8723}"
BASE="http://127.0.0.1:$PORT"
TMP="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/warpsimd" ./cmd/warpsimd

wait_healthy() {
  for _ in $(seq 1 100); do
    curl -fs "$BASE/healthz" >/dev/null 2>&1 && break
    sleep 0.1
  done
  curl -fs "$BASE/healthz" >/dev/null
}

"$TMP/warpsimd" -addr "127.0.0.1:$PORT" -journal "$TMP/journal.jsonl" -store "$TMP/store" &
PID=$!
wait_healthy

req='{"kernel":"HT","wait":true,"config":{"sms":2,"quick":true,"sched":"GTO"}}'

echo "--- first submission (engine run)"
r1="$(curl -fs -X POST -H 'Content-Type: application/json' -d "$req" "$BASE/v1/jobs")"
echo "$r1"
echo "$r1" | grep -q '"cached": false' || { echo "FAIL: first submission should not be cached" >&2; exit 1; }
echo "$r1" | grep -q '"state": "done"'  || { echo "FAIL: sync submission should return done" >&2; exit 1; }
key="$(echo "$r1" | sed -n 's/.*"key": "\([^"]*\)".*/\1/p')"
[ -n "$key" ] || { echo "FAIL: no result key in response" >&2; exit 1; }

echo "--- second submission (must be a cache hit)"
r2="$(curl -fs -X POST -H 'Content-Type: application/json' -d "$req" "$BASE/v1/jobs")"
echo "$r2"
echo "$r2" | grep -q '"cached": true' || { echo "FAIL: second identical submission should be cached" >&2; exit 1; }

echo "--- result bytes are identical across fetches"
curl -fs "$BASE/v1/results/$key" > "$TMP/res1.json"
curl -fs "$BASE/v1/results/$key" > "$TMP/res2.json"
cmp "$TMP/res1.json" "$TMP/res2.json" || { echo "FAIL: result fetches differ" >&2; exit 1; }
grep -q '"schema": 2' "$TMP/res1.json" || { echo "FAIL: result is not a schema-2 manifest" >&2; exit 1; }

echo "--- racy inline submission is rejected at admission (422, race findings)"
racy='{"source":"  mov %r1, %tid\n  shr %r3, %r1, 1\n  st.global [%r3+0], %r1\n  exit\n","grid_ctas":1,"cta_threads":64,"mem_words":64}'
rcode="$(curl -s -o "$TMP/racy.json" -w '%{http_code}' -X POST -H 'Content-Type: application/json' -d "$racy" "$BASE/v1/jobs")"
[ "$rcode" = 422 ] || { echo "FAIL: racy submission returned $rcode, want 422" >&2; cat "$TMP/racy.json" >&2; exit 1; }
grep -q '"category": *"race"' "$TMP/racy.json" || { echo "FAIL: 422 body lacks race findings" >&2; cat "$TMP/racy.json" >&2; exit 1; }

echo "--- the same program is admitted with allow_unsafe"
unsafe='{"source":"  mov %r1, %tid\n  shr %r3, %r1, 1\n  st.global [%r3+0], %r1\n  exit\n","grid_ctas":1,"cta_threads":64,"mem_words":64,"allow_unsafe":true,"wait":true}'
r3="$(curl -fs -X POST -H 'Content-Type: application/json' -d "$unsafe" "$BASE/v1/jobs")"
echo "$r3" | grep -q '"state": "done"' || { echo "FAIL: allow_unsafe submission should run" >&2; exit 1; }

echo "--- stats"
curl -fs "$BASE/v1/stats"

echo "--- SIGTERM: daemon must drain cleanly (exit 0)"
kill -TERM "$PID"
wait "$PID"

echo "--- journal is fully resolved (no unfinished jobs survive a clean drain)"
admits="$(grep -c '"admit"' "$TMP/journal.jsonl")"
dones="$(grep -c '"done"' "$TMP/journal.jsonl")"
[ "$admits" -eq "$dones" ] || { echo "FAIL: $admits admits vs $dones dones after drain" >&2; exit 1; }

echo "--- restart on the same store: persisted key survives as a disk hit"
"$TMP/warpsimd" -addr "127.0.0.1:$PORT" -journal "$TMP/journal.jsonl" -store "$TMP/store" &
PID=$!
wait_healthy
r4="$(curl -fs -X POST -H 'Content-Type: application/json' -d "$req" "$BASE/v1/jobs")"
echo "$r4"
echo "$r4" | grep -q '"cached": true' || { echo "FAIL: persisted key re-ran the engine after restart" >&2; exit 1; }
curl -fs "$BASE/v1/results/$key" > "$TMP/res3.json"
cmp "$TMP/res1.json" "$TMP/res3.json" || { echo "FAIL: result bytes changed across restart" >&2; exit 1; }
curl -fs "$BASE/v1/stats" | grep -q '"disk_hits"' || { echo "FAIL: stats lack the persistent-store counters" >&2; exit 1; }
kill -TERM "$PID"
wait "$PID"

echo "--- warpload against a dead port: non-zero exit + structured failure summary"
set +e
go run ./cmd/warpload -addr "http://127.0.0.1:1" -clients 2 -requests 4 -retries 2 2> "$TMP/warpload.err"
wcode=$?
set -e
[ "$wcode" -ne 0 ] || { echo "FAIL: warpload exited 0 against a dead port" >&2; exit 1; }
grep -q 'warpload: FAIL' "$TMP/warpload.err" || { echo "FAIL: no structured failure summary on stderr" >&2; cat "$TMP/warpload.err" >&2; exit 1; }
grep -q '"errors":' "$TMP/warpload.err" || { echo "FAIL: failure summary lacks error counts" >&2; cat "$TMP/warpload.err" >&2; exit 1; }

echo "service smoke: OK"
