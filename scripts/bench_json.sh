#!/usr/bin/env bash
# Runs the per-kernel simulator throughput benchmarks and writes their
# metrics (ns/op, simcycles/s, allocs/op, ...) as JSON, one object per
# sub-benchmark.
#
# Usage: scripts/bench_json.sh [-f] [out.json]
#
# Refuses to overwrite an existing output file unless -f is given —
# committed BENCH_PR*.json baselines are per-PR records, and clobbering
# one silently rewrites the regression baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

force=0
if [[ "${1:-}" == "-f" ]]; then
    force=1
    shift
fi
out="${1:-BENCH_PR6.json}"
if [[ "$force" -eq 0 && -s "$out" ]]; then
    echo "bench_json: $out already exists; pass -f to overwrite, or pick a new BENCH_PR<n>.json name" >&2
    exit 1
fi

go test -bench=BenchmarkSimulator -run '^$' -benchmem . | tee /tmp/bench_raw.txt

awk '
BEGIN { print "[" ; first = 1 }
$1 ~ /^BenchmarkSimulator\// {
    if (!first) printf ",\n"; first = 0
    name = $1; sub(/^BenchmarkSimulator\//, "", name); sub(/-[0-9]+$/, "", name)
    printf "  {\"bench\": \"%s\", \"iters\": %s", name, $2
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit); gsub(/[^A-Za-z0-9_]/, "_", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { print "\n]" }
' /tmp/bench_raw.txt > "$out"

echo "wrote $out"
