#!/usr/bin/env bash
# Runs the per-kernel simulator throughput benchmarks and writes their
# metrics (ns/op, simcycles/s, allocs/op, ...) as JSON, one object per
# sub-benchmark. Usage: scripts/bench_json.sh [out.json]
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-BENCH_PR6.json}"

go test -bench=BenchmarkSimulator -run '^$' -benchmem . | tee /tmp/bench_raw.txt

awk '
BEGIN { print "[" ; first = 1 }
$1 ~ /^BenchmarkSimulator\// {
    if (!first) printf ",\n"; first = 0
    name = $1; sub(/^BenchmarkSimulator\//, "", name); sub(/-[0-9]+$/, "", name)
    printf "  {\"bench\": \"%s\", \"iters\": %s", name, $2
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit); gsub(/[^A-Za-z0-9_]/, "_", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { print "\n]" }
' /tmp/bench_raw.txt > "$out"

echo "wrote $out"
