#!/usr/bin/env bash
# Advisory throughput-regression check: runs the simulator benchmarks
# fresh (scripts/bench_json.sh) and compares simcycles/s per kernel
# against the most recent committed BENCH_*.json baseline. Kernels more
# than THRESHOLD slower than the baseline are flagged and the script
# exits nonzero — callers (the CI bench job) treat that as advisory,
# since shared runners make absolute throughput noisy.
#
# Usage: scripts/bench_regress.sh [threshold-percent]   (default 10)
set -euo pipefail
cd "$(dirname "$0")/.."
threshold="${1:-10}"

# The baseline is the committed BENCH_PR<n>.json with the highest PR
# number — not the newest mtime, which checkouts and cache restores
# scramble (a fresh clone gives every file the same timestamp).
baseline="$(ls BENCH_PR*.json 2>/dev/null \
    | sed -n 's/^BENCH_PR\([0-9][0-9]*\)\.json$/\1 &/p' \
    | sort -n | tail -n1 | cut -d' ' -f2 || true)"
if [[ -z "$baseline" ]]; then
    echo "bench_regress: no BENCH_PR<n>.json baseline found; nothing to compare" >&2
    exit 0
fi
echo "baseline: $baseline (threshold: ${threshold}% simcycles/s)"

# mktemp creates the (empty) file, so bench_json.sh needs -f to write it.
fresh="$(mktemp /tmp/bench_fresh.XXXXXX.json)"
trap 'rm -f "$fresh"' EXIT
scripts/bench_json.sh -f "$fresh" >/dev/null

# Extract "bench simcycles_per_s" pairs from the one-object-per-line JSON
# both files use (bench_json.sh output; no jq dependency).
pairs() {
    sed -n 's/.*"bench": *"\([^"]*\)".*"simcycles_per_s": *\([0-9.]*\).*/\1 \2/p' "$1"
}

pairs "$baseline" >/tmp/bench_base.txt
pairs "$fresh" >/tmp/bench_new.txt

status=0
while read -r name new; do
    base="$(awk -v n="$name" '$1 == n { print $2 }' /tmp/bench_base.txt)"
    if [[ -z "$base" ]]; then
        echo "  $name: new benchmark (no baseline)"
        continue
    fi
    verdict="$(awk -v b="$base" -v n="$new" -v t="$threshold" 'BEGIN {
        drop = 100 * (b - n) / b
        printf "%.1f %s", drop, (drop > t) ? "REGRESSION" : "ok"
    }')"
    drop="${verdict% *}"
    if [[ "${verdict#* }" == "REGRESSION" ]]; then
        echo "  $name: ${drop}% slower (${base} -> ${new} simcycles/s)  << REGRESSION"
        status=1
    else
        echo "  $name: ${drop}% slower (${base} -> ${new} simcycles/s)"
    fi
done </tmp/bench_new.txt

if [[ "$status" -ne 0 ]]; then
    echo "bench_regress: simulator throughput regressed >${threshold}% on at least one kernel" >&2
fi
exit "$status"
