// Package warpsched is a cycle-level SIMT GPU simulator built to
// reproduce "Warp Scheduling for Fine-Grained Synchronization"
// (ElTantawy & Aamodt, HPCA 2018). It implements the paper's two
// contributions — DDOS, a dynamic hardware detector for busy-wait
// (spin-lock and wait-and-signal) loops, and BOWS, a warp-scheduler
// extension that deprioritizes and rate-limits spinning warps — on top of
// a from-scratch GPU model: SIMT cores with a reconvergence stack, LRR /
// GTO / CAWA warp schedulers, non-coherent L1 caches, a banked L2 with a
// serializing atomic unit, and a DRAM bandwidth model.
//
// Quick start:
//
//	k, _ := warpsched.Kernel("HT")
//	opt := warpsched.DefaultOptions()
//	opt.Sched = warpsched.GTO
//	opt.BOWS = warpsched.DefaultBOWS() // enable BOWS driven by DDOS
//	res, err := warpsched.Run(opt, k)
//
// The internal packages hold the implementation; this package is the
// stable surface: configurations (Table II), the kernel suite (paper §V),
// and the Run entry point. See cmd/experiments for the harness that
// regenerates every table and figure of the paper, and EXPERIMENTS.md for
// paper-vs-measured results.
package warpsched

import (
	"fmt"

	"warpsched/internal/config"
	"warpsched/internal/energy"
	"warpsched/internal/isa"
	"warpsched/internal/kernels"
	"warpsched/internal/mem"
	"warpsched/internal/sim"
	"warpsched/internal/trace"
)

// Re-exported configuration types (see internal/config for field docs).
type (
	// GPU is a hardware configuration (Table II).
	GPU = config.GPU
	// BOWSConfig holds Back-Off Warp Spinning parameters.
	BOWSConfig = config.BOWS
	// DDOSConfig holds Dynamic Detection Of Spinning parameters.
	DDOSConfig = config.DDOS
	// SchedulerKind names a baseline warp scheduling policy.
	SchedulerKind = config.SchedulerKind
	// DetectorKind names a spin-detector implementation (Options.Detector).
	DetectorKind = config.DetectorKind
	// TAGEConfig holds TAGE-SIB spin-predictor parameters (Options.TAGE).
	TAGEConfig = config.TAGE
	// WaSPConfig holds WaSP priority-group scheduling parameters
	// (Options.WaSP).
	WaSPConfig = config.WaSP
	// Options selects hardware configuration and policies for a run.
	Options = sim.Options
	// Result is a completed simulation's statistics bundle.
	Result = sim.Result
	// Benchmark is a kernel plus its input generator and verifier.
	Benchmark = kernels.Kernel
	// EnergyBreakdown is the modeled dynamic energy split.
	EnergyBreakdown = energy.Breakdown
	// Program is an assembled kernel body (see ParseProgram).
	Program = isa.Program
	// Launch describes a kernel launch: program, grid geometry,
	// parameters, memory size and initializer.
	Launch = sim.Launch
	// TraceRing records the most recent pipeline events (Options.Tracer).
	TraceRing = trace.Ring
	// FaultConfig configures deterministic, seeded memory-system fault
	// injection (Options.Faults); see DefaultFaults.
	FaultConfig = mem.FaultConfig
	// HangError reports a hung simulation: a watchdog or early-abort
	// failure carrying a classified HangReport. Returned (wrapped) by Run
	// when a kernel deadlocks, livelocks or starves.
	HangError = sim.HangError
	// HangReport is the structured diagnosis attached to a HangError:
	// classification, progress counters over the sampling window, and the
	// per-warp stuck states.
	HangReport = sim.HangReport
	// InvariantError reports runtime invariant violations detected with
	// Options.Check enabled.
	InvariantError = sim.InvariantError
)

// DefaultHangWindow is the progress-sampling window (in cycles) used for
// hang classification when Options.HangWindow is armed.
const DefaultHangWindow = sim.DefaultHangWindow

// DefaultFaults returns the standard fault-injection mix (rare latency
// spikes, response reordering, atomic retry storms) driven by seed.
// Assign to Options.Faults; scale intensity with FaultConfig.Scale.
func DefaultFaults(seed uint64) FaultConfig { return mem.DefaultFaults(seed) }

// NewTraceRing creates a pipeline-event recorder holding the last n
// events; attach it via Options.Tracer.
func NewTraceRing(n int) *TraceRing { return trace.NewRing(n) }

// Scheduler kinds: the paper's three baselines plus the WaSP
// priority-group policy (see docs/SCHEDULERS.md).
const (
	LRR  = config.LRR
	GTO  = config.GTO
	CAWA = config.CAWA
	WASP = config.WASP
)

// Spin-detector kinds (Options.Detector; empty selects DDOS).
const (
	// DetectDDOS selects the paper's value-history detector.
	DetectDDOS = config.DetectDDOS
	// DetectTAGE selects the TAGE-SIB tagged-geometric-history predictor.
	DetectTAGE = config.DetectTAGE
)

// BOWS trigger modes.
const (
	// BOWSOff disables BOWS.
	BOWSOff = config.BOWSOff
	// BOWSDDOS drives BOWS from the DDOS detector (the full system).
	BOWSDDOS = config.BOWSDDOS
	// BOWSStatic drives BOWS from compiler/programmer SIB annotations.
	BOWSStatic = config.BOWSStatic
)

// GTX480 returns the paper's Fermi configuration.
func GTX480() GPU { return config.GTX480() }

// GTX1080Ti returns the paper's Pascal configuration.
func GTX1080Ti() GPU { return config.GTX1080Ti() }

// DefaultBOWS returns the paper's Table II BOWS parameters (adaptive
// delay limit, DDOS-driven).
func DefaultBOWS() BOWSConfig { return config.DefaultBOWS() }

// FixedBOWS returns BOWS with a fixed back-off delay limit (Figure 10).
func FixedBOWS(limit int64) BOWSConfig { return config.FixedBOWS(limit) }

// DefaultDDOS returns the paper's DDOS evaluation parameters
// (XOR hashing, m=k=8, l=8, t=4).
func DefaultDDOS() DDOSConfig { return config.DefaultDDOS() }

// DefaultTAGE returns the default TAGE-SIB predictor geometry (4 tagged
// tables, history lengths 4..32, 6-bit indices, 8-bit tags).
func DefaultTAGE() TAGEConfig { return config.DefaultTAGE() }

// DefaultWaSP returns the default WaSP knobs (priority group of 4,
// rotation every 20000 cycles).
func DefaultWaSP() WaSPConfig { return config.DefaultWaSP() }

// DefaultOptions returns GTX480 + GTO with BOWS off.
func DefaultOptions() Options { return sim.DefaultOptions() }

// Kernel returns a benchmark from the suite by name. Valid names are
// listed by KernelNames: the synchronization suite (TB, ST, DS, ATM, HT,
// TSP, NW1, NW2) and the fourteen sync-free Rodinia stand-ins (KMEANS,
// VECADD, REDUCE, MS, HL, STENCIL, BFS, HOTSPOT, PATHFINDER, BACKPROP,
// SRAD, LUD, NN, GAUSSIAN).
func Kernel(name string) (*Benchmark, error) { return kernels.ByName(name) }

// KernelNames lists every benchmark in the suite.
func KernelNames() []string { return kernels.Names() }

// SyncSuite returns the paper's eight synchronization kernels.
func SyncSuite() []*Benchmark { return kernels.SyncSuite() }

// SyncFreeSuite returns the Rodinia-standin kernels.
func SyncFreeSuite() []*Benchmark { return kernels.SyncFreeSuite() }

// Run simulates the benchmark to completion, verifies its functional
// output, and returns the result.
func Run(opt Options, k *Benchmark) (*Result, error) {
	eng, err := sim.New(opt, k.Launch)
	if err != nil {
		return nil, err
	}
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	if k.Verify != nil {
		if err := k.Verify(res.Memory); err != nil {
			return nil, fmt.Errorf("warpsched: %s produced incorrect output under %s: %w",
				k.Name, opt.Sched, err)
		}
	}
	return res, nil
}

// ParseProgram assembles a PTX-flavoured text kernel. The syntax is
// documented on internal/isa.Parse; see examples/customkernel for a
// complete program. Annotate spin-loop branches with "!sib" to give
// BOWSStatic mode (and detection-quality metrics) ground truth.
func ParseProgram(name, src string) (*Program, error) {
	return isa.Parse(name, src)
}

// NewBenchmark wraps a launch and an optional verifier as a runnable
// Benchmark, for kernels defined outside the built-in suite.
func NewBenchmark(name, desc string, launch Launch, verify func(mem []uint32) error) *Benchmark {
	return &Benchmark{
		Name:   name,
		Class:  kernels.ClassSync,
		Desc:   desc,
		Launch: launch,
		Verify: verify,
	}
}

// Energy computes the modeled dynamic energy of a result under the
// coefficient set matching the GPU configuration used.
func Energy(opt Options, res *Result) EnergyBreakdown {
	return energy.Compute(energy.ByConfigName(opt.GPU.Name), &res.Stats)
}
